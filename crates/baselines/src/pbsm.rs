//! PBSM — Partition Based Spatial-Merge join (Patel & DeWitt, SIGMOD '96).
//!
//! PBSM partitions the joint extent of both datasets into a uniform grid and assigns
//! every object to **all** cells it overlaps (multiple assignment). Matching cells of
//! the two assignments are then joined with a plane-sweep. Replication means a pair
//! can be found in several cells, so results are de-duplicated *during* the join with
//! the reference-point rule (Dittrich & Seeger) — like the paper's implementation,
//! which "deduplicates during the join and thus does not need additional memory".
//!
//! The paper evaluates two configurations that bracket the comparisons/memory
//! trade-off: PBSM-500 (500 cells per dimension — fastest, but roughly two orders of
//! magnitude more memory than everything else) and PBSM-100 (100 cells per
//! dimension — less memory, more comparisons).

use touch_core::{deliver, kernels, PairSink, SpatialJoinAlgorithm};
use touch_geom::{Aabb, Dataset};
use touch_index::{MultiAssignGrid, UniformGrid};
use touch_metrics::{vec_bytes, MemoryUsage, Phase, RunReport};

/// The PBSM spatial join.
#[derive(Debug, Clone, Copy)]
pub struct PbsmJoin {
    cells_per_dim: usize,
    label: &'static str,
    threads: usize,
}

impl PbsmJoin {
    /// PBSM with an arbitrary grid resolution (cells per dimension).
    ///
    /// # Panics
    /// Panics if `cells_per_dim` is zero.
    pub fn new(cells_per_dim: usize) -> Self {
        assert!(cells_per_dim > 0, "cells_per_dim must be positive");
        PbsmJoin { cells_per_dim, label: "PBSM", threads: 1 }
    }

    /// The paper's fast, memory-hungry configuration: 500 cells per dimension.
    pub fn pbsm_500() -> Self {
        PbsmJoin { cells_per_dim: 500, label: "PBSM-500", threads: 1 }
    }

    /// The paper's compact configuration: 100 cells per dimension.
    pub fn pbsm_100() -> Self {
        PbsmJoin { cells_per_dim: 100, label: "PBSM-100", threads: 1 }
    }

    /// A PBSM with an explicit resolution and report label (used by the experiment
    /// harness when scaling the paper's resolutions to smaller workloads).
    pub fn with_label(cells_per_dim: usize, label: &'static str) -> Self {
        assert!(cells_per_dim > 0, "cells_per_dim must be positive");
        PbsmJoin { cells_per_dim, label, threads: 1 }
    }

    /// This PBSM building its two partition grids with `threads` workers
    /// ([`MultiAssignGrid::build_parallel`]). Pairs, emission order and every
    /// counter — including replicas — are identical at any width; only the
    /// build and assignment phase wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Grid resolution (cells per dimension).
    pub fn cells_per_dim(&self) -> usize {
        self.cells_per_dim
    }

    /// Partition-build worker count (1 = the sequential build).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl SpatialJoinAlgorithm for PbsmJoin {
    fn name(&self) -> String {
        self.label.to_string()
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        let mut counters = std::mem::take(&mut report.counters);

        let Some(extent) = join_extent(a, b) else {
            report.counters = counters;
            return;
        };
        let grid = UniformGrid::new(extent, self.cells_per_dim);

        // Partition dataset A (build) and dataset B (assignment), replicating each
        // object into every cell it overlaps.
        let grid_a = report.timer.time(Phase::Build, || {
            MultiAssignGrid::build_parallel(grid, a.objects(), self.threads)
        });
        let grid_b = report.timer.time(Phase::Assignment, || {
            MultiAssignGrid::build_parallel(grid, b.objects(), self.threads)
        });
        counters.replicas += (grid_a.replicas() + grid_b.replicas()) as u64;

        // Join matching cells with a plane-sweep; suppress duplicates with the
        // reference-point rule.
        let mut peak_scratch = 0usize;
        let mut suppressed = 0u64;
        let mut results = 0u64;
        report.timer.time(Phase::Join, || {
            let mut scratch_a = Vec::new();
            let mut scratch_b = Vec::new();
            for cell in grid_a.non_empty_cells() {
                if sink.is_done() {
                    break;
                }
                let ids_a = grid_a.cell_entries(cell);
                let ids_b = grid_b.cell_entries(cell);
                if ids_a.is_empty() || ids_b.is_empty() {
                    continue;
                }
                scratch_a.clear();
                scratch_b.clear();
                scratch_a.extend(ids_a.iter().map(|&id| *a.get(id)));
                scratch_b.extend(ids_b.iter().map(|&id| *b.get(id)));
                peak_scratch = peak_scratch.max(vec_bytes(&scratch_a) + vec_bytes(&scratch_b));
                kernels::plane_sweep(
                    &mut scratch_a,
                    &mut scratch_b,
                    &mut counters,
                    &mut |ia, ib| {
                        // A pair replicated into several cells is reported only from the
                        // cell containing the lower corner of its MBR intersection.
                        let ref_point = a.get(ia).mbr.intersection_reference_point(&b.get(ib).mbr);
                        if grid.linear_index(grid.cell_of_point(&ref_point)) == cell {
                            deliver(sink, ia, ib, &mut results)
                        } else {
                            suppressed += 1;
                            !sink.is_done()
                        }
                    },
                );
            }
        });
        counters.duplicates_suppressed += suppressed;

        counters.results += results;
        report.counters = counters;
        report.memory_bytes = grid_a.memory_bytes() + grid_b.memory_bytes() + peak_scratch;
    }
}

fn join_extent(a: &Dataset, b: &Dataset) -> Option<Aabb> {
    match (a.extent(), b.extent()) {
        (Some(ea), Some(eb)) => Some(ea.union(&eb)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;
    use touch_core::collect_join;
    use touch_geom::Point3;

    fn sample(n: usize, seed: u64, spread: f64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * spread, next() * spread, next() * spread);
            Aabb::new(min, min + Point3::splat(0.3 + next() * 2.0))
        }))
    }

    #[test]
    fn matches_nested_loop_and_deduplicates() {
        let a = sample(150, 1, 40.0);
        let b = sample(200, 2, 40.0);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        for resolution in [4, 16, 50] {
            let (pairs, report) = collect_join(&PbsmJoin::new(resolution), &a, &b);
            assert_eq!(pairs, expected, "resolution {resolution} changed the result");
            let mut dedup = pairs.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), pairs.len(), "duplicates leaked at resolution {resolution}");
            assert!(report.memory_bytes > 0);
        }
    }

    #[test]
    fn finer_grids_replicate_more_and_use_more_memory() {
        // Keep the cells well above the object size (~1–2 units) so the paper's
        // PBSM-500 vs PBSM-100 trade-off applies: a finer grid needs more memory
        // (replication) but fewer comparisons.
        let a = sample(400, 3, 120.0);
        let b = sample(400, 4, 120.0);
        let (_, coarse) = collect_join(&PbsmJoin::new(5), &a, &b);
        let (_, fine) = collect_join(&PbsmJoin::new(25), &a, &b);
        assert!(fine.counters.replicas > coarse.counters.replicas);
        assert!(fine.memory_bytes > coarse.memory_bytes);
        assert!(
            fine.counters.comparisons < coarse.counters.comparisons,
            "fine: {}, coarse: {}",
            fine.counters.comparisons,
            coarse.counters.comparisons
        );
    }

    #[test]
    fn threaded_partition_build_changes_nothing_observable() {
        let a = sample(300, 7, 60.0);
        let b = sample(250, 8, 60.0);
        let (expected_pairs, expected) = collect_join(&PbsmJoin::new(12), &a, &b);
        for threads in [2, 4, 8] {
            let (pairs, report) = collect_join(&PbsmJoin::new(12).with_threads(threads), &a, &b);
            assert_eq!(pairs, expected_pairs, "{threads} threads: pairs diverged");
            assert_eq!(report.counters, expected.counters, "{threads} threads: counters diverged");
            assert_eq!(report.memory_bytes, expected.memory_bytes);
        }
        assert_eq!(PbsmJoin::new(12).with_threads(4).threads(), 4);
        assert_eq!(PbsmJoin::new(12).threads(), 1);
    }

    #[test]
    fn paper_configurations_have_expected_names() {
        assert_eq!(PbsmJoin::pbsm_500().name(), "PBSM-500");
        assert_eq!(PbsmJoin::pbsm_100().name(), "PBSM-100");
        assert_eq!(PbsmJoin::pbsm_500().cells_per_dim(), 500);
        assert_eq!(PbsmJoin::pbsm_100().cells_per_dim(), 100);
        assert_eq!(PbsmJoin::with_label(50, "PBSM-50").name(), "PBSM-50");
    }

    #[test]
    fn empty_inputs() {
        let empty = Dataset::new();
        let a = sample(10, 5, 10.0);
        let (pairs, report) = collect_join(&PbsmJoin::new(10), &empty, &a);
        assert!(pairs.is_empty());
        assert_eq!(report.result_pairs(), 0);
    }
}

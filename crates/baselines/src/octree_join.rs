//! Octree join — the 3-D quadtree double-index traversal of Section 2.2.1.
//!
//! Both datasets are indexed with region octrees built over the same joint extent and
//! with the same split structure is *not* required: the join simply walks the leaves
//! of the A-octree and, for each leaf, joins the objects assigned to it against the
//! B-objects whose octree candidates overlap that region. Because the octrees use
//! multiple assignment (objects are duplicated into every overlapping leaf, like the
//! R+-tree), the same pair can be discovered in several leaves and must be
//! de-duplicated — the paper's argument for why TOUCH avoids this style of indexing.
//! De-duplication uses the same reference-point rule as PBSM, so no extra result
//! memory is needed.
//!
//! This baseline is not part of the paper's measured suite (the paper discusses it in
//! related work); it is included to complete the design-space coverage and as an
//! additional correctness cross-check.

use touch_core::{deliver, kernels, PairSink, SpatialJoinAlgorithm};
use touch_geom::{Aabb, Dataset, SpatialObject};
use touch_index::Octree;
use touch_metrics::{vec_bytes, MemoryUsage, Phase, RunReport};

/// The octree double-index join.
#[derive(Debug, Clone, Copy)]
pub struct OctreeJoin {
    leaf_capacity: usize,
    max_depth: u32,
}

impl OctreeJoin {
    /// Octree join with an explicit leaf capacity and maximum depth.
    pub fn new(leaf_capacity: usize, max_depth: u32) -> Self {
        OctreeJoin { leaf_capacity, max_depth }
    }

    /// A default configuration comparable to the R-tree baselines (32-object leaves).
    pub fn with_defaults() -> Self {
        OctreeJoin { leaf_capacity: 32, max_depth: 8 }
    }
}

impl Default for OctreeJoin {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl SpatialJoinAlgorithm for OctreeJoin {
    fn name(&self) -> String {
        "Octree".to_string()
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        let mut counters = std::mem::take(&mut report.counters);

        let Some(extent) = join_extent(a, b) else {
            report.counters = counters;
            return;
        };

        // Index both datasets over the joint extent.
        let (tree_a, tree_b) = report.timer.time(Phase::Build, || {
            (
                Octree::build(extent, a.objects(), self.leaf_capacity, self.max_depth),
                Octree::build(extent, b.objects(), self.leaf_capacity, self.max_depth),
            )
        });
        counters.replicas += (tree_a.total_assignments() - a.len()) as u64
            + (tree_b.total_assignments() - b.len()) as u64;

        // Join: for every non-empty A leaf, fetch the B candidates overlapping the
        // leaf region and compare, reporting a pair only from the leaf containing its
        // reference point.
        let mut peak_scratch = 0usize;
        let mut suppressed = 0u64;
        let mut results = 0u64;
        report.timer.time(Phase::Join, || {
            let mut scratch_a: Vec<SpatialObject> = Vec::new();
            let mut scratch_b: Vec<SpatialObject> = Vec::new();
            tree_a.for_each_leaf(|region, ids_a| {
                if sink.is_done() {
                    return;
                }
                let candidates_b = tree_b.query_candidates(region);
                if candidates_b.is_empty() {
                    return;
                }
                scratch_a.clear();
                scratch_b.clear();
                scratch_a.extend(ids_a.iter().map(|&id| *a.get(id)));
                scratch_b.extend(candidates_b.iter().map(|&id| *b.get(id)));
                peak_scratch = peak_scratch.max(vec_bytes(&scratch_a) + vec_bytes(&scratch_b));
                kernels::plane_sweep(
                    &mut scratch_a,
                    &mut scratch_b,
                    &mut counters,
                    &mut |ia, ib| {
                        let rp = a.get(ia).mbr.intersection_reference_point(&b.get(ib).mbr);
                        if tree_a.owns_point(region, &rp) {
                            deliver(sink, ia, ib, &mut results)
                        } else {
                            suppressed += 1;
                            !sink.is_done()
                        }
                    },
                );
            });
        });
        counters.duplicates_suppressed += suppressed;

        counters.results += results;
        report.counters = counters;
        report.memory_bytes = tree_a.memory_bytes() + tree_b.memory_bytes() + peak_scratch;
    }
}

fn join_extent(a: &Dataset, b: &Dataset) -> Option<Aabb> {
    match (a.extent(), b.extent()) {
        (Some(ea), Some(eb)) => Some(ea.union(&eb)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;
    use touch_core::collect_join;
    use touch_geom::Point3;

    fn sample(n: usize, seed: u64, spread: f64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * spread, next() * spread, next() * spread);
            Aabb::new(min, min + Point3::splat(0.2 + next() * 2.5))
        }))
    }

    #[test]
    fn matches_nested_loop_without_duplicates() {
        let a = sample(300, 1, 50.0);
        let b = sample(400, 2, 50.0);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        let (pairs, report) = collect_join(&OctreeJoin::with_defaults(), &a, &b);
        assert_eq!(pairs, expected);
        let mut dedup = pairs.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), pairs.len());
        assert!(report.memory_bytes > 0);
    }

    #[test]
    fn replication_is_reported() {
        // Large objects straddling octant boundaries must be replicated.
        let mut a = sample(200, 3, 30.0);
        a.push_mbr(Aabb::new(Point3::splat(1.0), Point3::splat(29.0)));
        let b = sample(300, 4, 30.0);
        let (_, report) = collect_join(&OctreeJoin::new(8, 6), &a, &b);
        assert!(report.counters.replicas > 0, "octree multiple assignment must replicate");
    }

    #[test]
    fn alternate_configurations_agree() {
        let a = sample(250, 5, 40.0);
        let b = sample(250, 6, 40.0);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        for (cap, depth) in [(4, 4), (16, 6), (64, 2)] {
            let (pairs, _) = collect_join(&OctreeJoin::new(cap, depth), &a, &b);
            assert_eq!(pairs, expected, "configuration ({cap},{depth}) changed the result");
        }
    }

    #[test]
    fn empty_inputs() {
        let empty = Dataset::new();
        let b = sample(10, 7, 10.0);
        let (pairs, _) = collect_join(&OctreeJoin::with_defaults(), &empty, &b);
        assert!(pairs.is_empty());
    }
}

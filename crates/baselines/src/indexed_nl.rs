//! Indexed nested loop join (Section 2.2.2).
//!
//! Requires an index on one dataset only: an STR-packed R-tree is bulk-loaded on
//! dataset A and every object of dataset B is issued as a range query against it.
//! "Executing a query for each object is a substantial overhead" (the repeated
//! root-to-leaf traversals), which is why the paper finds INL slower than the
//! synchronous R-tree traversal even though both perform almost the same number of
//! object comparisons.

use touch_core::{deliver, PairSink, SpatialJoinAlgorithm};
use touch_geom::Dataset;
use touch_index::PackedRTree;
use touch_metrics::{MemoryUsage, Phase, RunReport};

/// The indexed nested loop join.
#[derive(Debug, Clone, Copy)]
pub struct IndexedNestedLoopJoin {
    leaf_capacity: usize,
    fanout: usize,
}

impl IndexedNestedLoopJoin {
    /// INL with an explicit R-tree configuration.
    pub fn new(leaf_capacity: usize, fanout: usize) -> Self {
        IndexedNestedLoopJoin { leaf_capacity, fanout }
    }

    /// The paper's R-tree configuration (fanout 2, ~2 KB nodes).
    pub fn paper_default() -> Self {
        IndexedNestedLoopJoin { leaf_capacity: 64, fanout: 2 }
    }
}

impl SpatialJoinAlgorithm for IndexedNestedLoopJoin {
    fn name(&self) -> String {
        "Indexed NL".to_string()
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        let mut counters = std::mem::take(&mut report.counters);

        // Build the index on dataset A only.
        let tree = report.timer.time(Phase::Build, || {
            PackedRTree::build(a.objects(), self.leaf_capacity, self.fanout)
        });

        // Loop over dataset B, querying the index once per object; an
        // early-terminating sink stops the probe loop between queries. The R-tree
        // query itself cannot be aborted mid-probe, so `deliver` guards every
        // push: once the sink reports done the remaining hits of the current
        // probe are discarded, keeping `results` equal to the delivered pairs.
        let mut results = 0u64;
        report.timer.time(Phase::Join, || {
            for ob in b.iter() {
                if sink.is_done() {
                    break;
                }
                tree.query(&ob.mbr, &mut counters, |oa| {
                    let _ = deliver(sink, oa.id, ob.id, &mut results);
                });
            }
        });

        counters.results += results;
        report.counters = counters;
        report.memory_bytes = tree.memory_bytes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;
    use touch_core::collect_join;
    use touch_geom::{Aabb, Point3};

    fn sample(n: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * 60.0, next() * 60.0, next() * 60.0);
            Aabb::new(min, min + Point3::splat(0.2 + next() * 2.5))
        }))
    }

    #[test]
    fn matches_nested_loop_with_far_fewer_comparisons() {
        let a = sample(300, 1);
        let b = sample(400, 2);
        let (expected, nl) = collect_join(&NestedLoopJoin::new(), &a, &b);
        let (pairs, inl) = collect_join(&IndexedNestedLoopJoin::new(16, 2), &a, &b);
        assert_eq!(pairs, expected);
        assert!(
            inl.counters.comparisons < nl.counters.comparisons / 4,
            "INL did {} comparisons, NL did {}",
            inl.counters.comparisons,
            nl.counters.comparisons
        );
        assert!(inl.counters.node_tests > 0, "per-object queries traverse the tree");
        assert!(inl.memory_bytes > 0);
    }

    #[test]
    fn alternate_tree_configurations_agree() {
        let a = sample(200, 3);
        let b = sample(150, 4);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        for (cap, fanout) in [(4, 2), (16, 4), (64, 8)] {
            let (pairs, _) = collect_join(&IndexedNestedLoopJoin::new(cap, fanout), &a, &b);
            assert_eq!(pairs, expected, "configuration ({cap},{fanout}) changed the result");
        }
    }

    #[test]
    fn empty_inputs() {
        let empty = Dataset::new();
        let b = sample(10, 5);
        let (pairs, _) = collect_join(&IndexedNestedLoopJoin::paper_default(), &empty, &b);
        assert!(pairs.is_empty());
        let (pairs, _) = collect_join(&IndexedNestedLoopJoin::paper_default(), &b, &empty);
        assert!(pairs.is_empty());
    }
}

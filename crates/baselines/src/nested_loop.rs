//! The nested loop join — the textbook worst case (Section 2.1).

use touch_core::{deliver, kernels, PairSink, SpatialJoinAlgorithm};
use touch_geom::Dataset;
use touch_metrics::{Phase, RunReport};

/// Nested loop join: compares every object of A against every object of B.
///
/// `O(|A|·|B|)` comparisons, but no auxiliary data structure at all — the paper keeps
/// it in the comparison because it is "broadly used (as part of disk-based joins and
/// otherwise)" and it anchors the memory axis at zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct NestedLoopJoin;

impl NestedLoopJoin {
    /// Creates the nested loop join.
    pub fn new() -> Self {
        NestedLoopJoin
    }
}

impl SpatialJoinAlgorithm for NestedLoopJoin {
    fn name(&self) -> String {
        "NL".to_string()
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        let mut counters = std::mem::take(&mut report.counters);
        let mut results = 0u64;
        report.timer.time(Phase::Join, || {
            kernels::all_pairs(a.objects(), b.objects(), &mut counters, &mut |x, y| {
                deliver(sink, x, y, &mut results)
            });
        });
        counters.results += results;
        report.counters = counters;
        report.memory_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use touch_core::collect_join;
    use touch_geom::{Aabb, Point3};

    #[test]
    fn exact_comparison_count_and_results() {
        let a = Dataset::from_mbrs((0..5).map(|i| {
            let min = Point3::new(i as f64 * 2.0, 0.0, 0.0);
            Aabb::new(min, min + Point3::splat(1.0))
        }));
        let b = Dataset::from_mbrs((0..4).map(|i| {
            let min = Point3::new(i as f64 * 2.0 + 0.5, 0.0, 0.0);
            Aabb::new(min, min + Point3::splat(1.0))
        }));
        let (pairs, report) = collect_join(&NestedLoopJoin::new(), &a, &b);
        assert_eq!(report.counters.comparisons, 20);
        assert_eq!(report.memory_bytes, 0);
        // b_i = [2i+0.5, 2i+1.5] overlaps exactly a_i = [2i, 2i+1].
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(report.result_pairs(), 4);
    }

    #[test]
    fn empty_datasets() {
        let empty = Dataset::new();
        let a = Dataset::from_mbrs([Aabb::new(Point3::ORIGIN, Point3::splat(1.0))]);
        let (pairs, report) = collect_join(&NestedLoopJoin::new(), &empty, &a);
        assert!(pairs.is_empty());
        assert_eq!(report.counters.comparisons, 0);
    }
}

//! S3 — Size Separation Spatial Join (Koudas & Sevcik, SIGMOD '97).
//!
//! S3 avoids replication (multiple *matching* instead of multiple *assignment*): it
//! maintains a hierarchy of `L` equi-width grids of increasing granularity for each
//! dataset and assigns every object to the single cell of the finest level at which
//! the object overlaps exactly one cell. Because every object is fully contained in
//! its cell, two objects can only intersect if one object's cell encloses the
//! other's; the join therefore visits, for every non-empty cell of one hierarchy, the
//! corresponding and enclosing cells of the other hierarchy and joins the cell
//! contents with a plane-sweep.
//!
//! S3 uses space-oriented partitioning, so it degrades on skewed (clustered) data:
//! large or boundary-straddling objects are promoted towards the coarse levels where
//! they are compared against nearly everything — the behaviour the paper's Figures
//! 9–11 highlight and that TOUCH's data-oriented partitioning avoids.

use touch_core::{deliver, kernels, PairSink, SpatialJoinAlgorithm};
use touch_geom::{Aabb, Dataset, SpatialObject};
use touch_index::{HierGridIndex, HierarchicalGrid, LevelCell};
use touch_metrics::{vec_bytes, MemoryUsage, Phase, RunReport};

/// The S3 spatial join.
#[derive(Debug, Clone, Copy)]
pub struct S3Join {
    levels: u32,
    refinement: u32,
}

impl S3Join {
    /// S3 with an arbitrary number of levels and refinement factor between levels.
    ///
    /// # Panics
    /// Panics if `levels` is zero or `refinement < 2`.
    pub fn new(levels: u32, refinement: u32) -> Self {
        assert!(levels >= 1, "levels must be at least 1");
        assert!(refinement >= 2, "refinement must be at least 2");
        S3Join { levels, refinement }
    }

    /// The paper's configuration: "a fanout of 3 and 5 levels".
    pub fn paper_default() -> Self {
        S3Join { levels: 5, refinement: 3 }
    }

    /// Number of levels in each hierarchy.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Refinement factor between consecutive levels.
    pub fn refinement(&self) -> u32 {
        self.refinement
    }

    /// Joins the contents of two cells with a plane-sweep, counting delivered
    /// pairs into `results` and honouring the sink's early termination.
    #[allow(clippy::too_many_arguments)]
    fn join_cells(
        a: &Dataset,
        b: &Dataset,
        ids_a: &[u32],
        ids_b: &[u32],
        counters: &mut touch_metrics::Counters,
        scratch_a: &mut Vec<SpatialObject>,
        scratch_b: &mut Vec<SpatialObject>,
        sink: &mut dyn PairSink,
        results: &mut u64,
    ) {
        if ids_a.is_empty() || ids_b.is_empty() || sink.is_done() {
            return;
        }
        scratch_a.clear();
        scratch_b.clear();
        scratch_a.extend(ids_a.iter().map(|&id| *a.get(id)));
        scratch_b.extend(ids_b.iter().map(|&id| *b.get(id)));
        kernels::plane_sweep(scratch_a, scratch_b, counters, &mut |ia, ib| {
            deliver(sink, ia, ib, results)
        });
    }
}

impl SpatialJoinAlgorithm for S3Join {
    fn name(&self) -> String {
        "S3".to_string()
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        let mut counters = std::mem::take(&mut report.counters);

        let Some(extent) = join_extent(a, b) else {
            report.counters = counters;
            return;
        };
        let hier = HierarchicalGrid::new(extent, self.levels, self.refinement);

        // Build one hierarchy per dataset (single assignment, no replication).
        let index_a = report.timer.time(Phase::Build, || HierGridIndex::build(hier, a.objects()));
        let index_b =
            report.timer.time(Phase::Assignment, || HierGridIndex::build(hier, b.objects()));

        let mut peak_scratch = 0usize;
        let mut results = 0u64;
        report.timer.time(Phase::Join, || {
            let mut scratch_a: Vec<SpatialObject> = Vec::new();
            let mut scratch_b: Vec<SpatialObject> = Vec::new();

            // For every non-empty B cell: join with the A cell at the same position
            // and with every enclosing (coarser) A cell.
            for (cell_b, ids_b) in index_b.non_empty_cells() {
                for level_a in 0..=cell_b.level {
                    let ancestor = hier.ancestor(cell_b, level_a);
                    if let Some(ids_a) = index_a.cell(ancestor) {
                        Self::join_cells(
                            a,
                            b,
                            ids_a,
                            ids_b,
                            &mut counters,
                            &mut scratch_a,
                            &mut scratch_b,
                            sink,
                            &mut results,
                        );
                        peak_scratch =
                            peak_scratch.max(vec_bytes(&scratch_a) + vec_bytes(&scratch_b));
                    }
                }
            }
            // Remaining enclosing relations: A cells that are *strictly finer* than
            // the B cell enclosing them (same-level pairs were handled above).
            for (cell_a, ids_a) in index_a.non_empty_cells() {
                for level_b in 0..cell_a.level {
                    let ancestor: LevelCell = hier.ancestor(cell_a, level_b);
                    if let Some(ids_b) = index_b.cell(ancestor) {
                        Self::join_cells(
                            a,
                            b,
                            ids_a,
                            ids_b,
                            &mut counters,
                            &mut scratch_a,
                            &mut scratch_b,
                            sink,
                            &mut results,
                        );
                        peak_scratch =
                            peak_scratch.max(vec_bytes(&scratch_a) + vec_bytes(&scratch_b));
                    }
                }
            }
        });

        counters.results += results;
        report.counters = counters;
        report.memory_bytes = index_a.memory_bytes() + index_b.memory_bytes() + peak_scratch;
    }
}

fn join_extent(a: &Dataset, b: &Dataset) -> Option<Aabb> {
    match (a.extent(), b.extent()) {
        (Some(ea), Some(eb)) => Some(ea.union(&eb)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;
    use touch_core::collect_join;
    use touch_geom::Point3;

    fn sample(n: usize, seed: u64, spread: f64, max_side: f64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * spread, next() * spread, next() * spread);
            Aabb::new(min, min + Point3::splat(0.1 + next() * max_side))
        }))
    }

    #[test]
    fn matches_nested_loop_for_various_configurations() {
        let a = sample(150, 1, 50.0, 2.0);
        let b = sample(180, 2, 50.0, 2.0);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        for (levels, refinement) in [(2, 2), (3, 3), (5, 3), (4, 2)] {
            let (pairs, _) = collect_join(&S3Join::new(levels, refinement), &a, &b);
            assert_eq!(pairs, expected, "S3({levels},{refinement}) changed the result");
        }
    }

    #[test]
    fn handles_large_objects_via_coarse_levels() {
        // Mix tiny and huge objects: the huge ones must be promoted but still join.
        let mut a = sample(60, 3, 40.0, 1.0);
        a.push_mbr(Aabb::new(Point3::ORIGIN, Point3::splat(39.0)));
        let b = sample(80, 4, 40.0, 1.0);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        let (pairs, _) = collect_join(&S3Join::paper_default(), &a, &b);
        assert_eq!(pairs, expected);
    }

    #[test]
    fn no_duplicates_thanks_to_single_assignment() {
        let a = sample(200, 5, 25.0, 3.0);
        let b = sample(200, 6, 25.0, 3.0);
        let (pairs, report) = collect_join(&S3Join::paper_default(), &a, &b);
        let mut dedup = pairs.clone();
        dedup.dedup();
        assert_eq!(pairs.len(), dedup.len());
        assert_eq!(report.counters.replicas, 0, "S3 never replicates objects");
        assert_eq!(report.counters.duplicates_suppressed, 0);
    }

    #[test]
    fn paper_default_configuration() {
        let s3 = S3Join::paper_default();
        assert_eq!(s3.levels(), 5);
        assert_eq!(s3.refinement(), 3);
        assert_eq!(s3.name(), "S3");
    }

    #[test]
    fn empty_inputs() {
        let empty = Dataset::new();
        let a = sample(10, 7, 10.0, 1.0);
        let (pairs, report) = collect_join(&S3Join::paper_default(), &a, &empty);
        assert!(pairs.is_empty());
        assert_eq!(report.result_pairs(), 0);
    }
}

//! # touch-baselines — the competitor algorithms of the TOUCH evaluation
//!
//! The paper compares TOUCH against every in-memory spatial join it could reasonably
//! be compared with (Section 2 and Section 6): the two genuinely in-memory approaches
//! (nested loop and plane-sweep) and four disk-based approaches executed in memory
//! (PBSM, S3, indexed nested loop and the synchronous R-tree traversal). All six are
//! implemented here from scratch on top of the `touch-index` substrates and the
//! `touch-core` join interface, with the same counting conventions as TOUCH so the
//! reproduced figures compare like with like.
//!
//! | Algorithm | Paper section | Type |
//! |---|---|---|
//! | [`NestedLoopJoin`] | §2.1 | in-memory, no index |
//! | [`PlaneSweepJoin`] | §2.1 | in-memory, sort-based |
//! | [`PbsmJoin`] (PBSM-100 / PBSM-500) | §2.2.3 | multiple assignment grid |
//! | [`S3Join`] | §2.2.3 | multiple matching, hierarchical grids |
//! | [`IndexedNestedLoopJoin`] | §2.2.2 | one dataset indexed (R-tree) |
//! | [`RTreeSyncJoin`] | §2.2.1 | both datasets indexed (R-trees) |
//!
//! Two further approaches the paper discusses in related work but does not measure
//! are also provided for completeness: [`OctreeJoin`] (the 3-D quadtree double-index
//! traversal with duplicated objects, §2.2.1) and [`SeededTreeJoin`] (the seeded-tree
//! join, §2.2.2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod indexed_nl;
mod nested_loop;
mod octree_join;
mod pbsm;
mod plane_sweep;
mod rtree_join;
mod s3;
mod seeded_tree;

pub use indexed_nl::IndexedNestedLoopJoin;
pub use nested_loop::NestedLoopJoin;
pub use octree_join::OctreeJoin;
pub use pbsm::PbsmJoin;
pub use plane_sweep::PlaneSweepJoin;
pub use rtree_join::RTreeSyncJoin;
pub use s3::S3Join;
pub use seeded_tree::SeededTreeJoin;

use touch_core::{SpatialJoinAlgorithm, TouchJoin};

/// The full algorithm suite of the paper's small-dataset experiment (Figure 8):
/// NL, PS, PBSM-500, PBSM-100, S3, INL, RTree and TOUCH, each in its paper
/// configuration.
pub fn full_suite() -> Vec<Box<dyn SpatialJoinAlgorithm>> {
    vec![
        Box::new(NestedLoopJoin::new()),
        Box::new(PlaneSweepJoin::new()),
        Box::new(PbsmJoin::pbsm_500()),
        Box::new(PbsmJoin::pbsm_100()),
        Box::new(S3Join::paper_default()),
        Box::new(IndexedNestedLoopJoin::paper_default()),
        Box::new(RTreeSyncJoin::paper_default()),
        Box::new(TouchJoin::default()),
    ]
}

/// The algorithm suite of the paper's large-dataset experiments (Figures 9–12, 15,
/// 16): the quadratic NL and PS are excluded, exactly as in the paper.
pub fn large_scale_suite() -> Vec<Box<dyn SpatialJoinAlgorithm>> {
    vec![
        Box::new(PbsmJoin::pbsm_500()),
        Box::new(PbsmJoin::pbsm_100()),
        Box::new(S3Join::paper_default()),
        Box::new(IndexedNestedLoopJoin::paper_default()),
        Box::new(RTreeSyncJoin::paper_default()),
        Box::new(TouchJoin::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_the_papers_algorithms() {
        let names: Vec<String> = full_suite().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["NL", "PS", "PBSM-500", "PBSM-100", "S3", "Indexed NL", "RTree", "TOUCH"]
        );
        let large: Vec<String> = large_scale_suite().iter().map(|a| a.name()).collect();
        assert!(!large.contains(&"NL".to_string()));
        assert!(!large.contains(&"PS".to_string()));
        assert_eq!(large.len(), 6);
    }
}

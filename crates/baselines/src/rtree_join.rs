//! Synchronous R-tree traversal join (Brinkhoff, Kriegel & Seeger, SIGMOD '93).
//!
//! Both datasets are indexed with STR-packed R-trees; the join descends both trees
//! simultaneously, only expanding pairs of nodes whose MBRs intersect, and compares
//! objects when two leaves meet. The paper calls this baseline "RTree" and notes that
//! it needs almost the same number of object comparisons as the indexed nested loop
//! but is faster because the trees are traversed once, synchronously, instead of once
//! per probe object — at the cost of keeping two trees in memory.

use touch_core::{deliver, kernels, PairSink, SpatialJoinAlgorithm};
use touch_geom::{Dataset, ObjectId};
use touch_index::{PackedRTree, RTreeNode};
use touch_metrics::{Counters, MemoryUsage, Phase, RunReport};

/// The synchronous R-tree traversal join.
#[derive(Debug, Clone, Copy)]
pub struct RTreeSyncJoin {
    leaf_capacity: usize,
    fanout: usize,
}

impl RTreeSyncJoin {
    /// Synchronous traversal with an explicit R-tree configuration (both trees use
    /// the same parameters).
    pub fn new(leaf_capacity: usize, fanout: usize) -> Self {
        RTreeSyncJoin { leaf_capacity, fanout }
    }

    /// The paper's R-tree configuration (fanout 2, ~2 KB nodes).
    pub fn paper_default() -> Self {
        RTreeSyncJoin { leaf_capacity: 64, fanout: 2 }
    }
}

impl SpatialJoinAlgorithm for RTreeSyncJoin {
    fn name(&self) -> String {
        "RTree".to_string()
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        let mut counters = std::mem::take(&mut report.counters);

        // Build one tree per dataset.
        let (tree_a, tree_b) = report.timer.time(Phase::Build, || {
            (
                PackedRTree::build(a.objects(), self.leaf_capacity, self.fanout),
                PackedRTree::build(b.objects(), self.leaf_capacity, self.fanout),
            )
        });

        let mut results = 0u64;
        report.timer.time(Phase::Join, || {
            if let (Some(ra), Some(rb)) = (tree_a.root_index(), tree_b.root_index()) {
                let _ = sync_traverse(&tree_a, &tree_b, ra, rb, &mut counters, &mut |ia, ib| {
                    deliver(sink, ia, ib, &mut results)
                });
            }
        });

        counters.results += results;
        report.counters = counters;
        report.memory_bytes = tree_a.memory_bytes() + tree_b.memory_bytes();
    }
}

/// Recursive synchronous traversal of two nodes whose MBRs are known (or assumed at
/// the roots) to be worth exploring. Shared with the seeded-tree join, which performs
/// the same traversal between the A-tree and each of its grown B-subtrees.
///
/// `emit` follows the early-termination convention of [`touch_core::kernels`]:
/// returning `false` aborts the whole traversal, and `sync_traverse` propagates
/// the verdict (`false` = stopped) to its caller.
pub(crate) fn sync_traverse(
    tree_a: &PackedRTree,
    tree_b: &PackedRTree,
    idx_a: usize,
    idx_b: usize,
    counters: &mut Counters,
    emit: &mut dyn FnMut(ObjectId, ObjectId) -> bool,
) -> bool {
    let node_a: &RTreeNode = tree_a.node(idx_a);
    let node_b: &RTreeNode = tree_b.node(idx_b);
    counters.record_node_test();
    if !node_a.mbr.intersects(&node_b.mbr) {
        return true;
    }
    match (node_a.is_leaf(), node_b.is_leaf()) {
        (true, true) => {
            let mut go_on = true;
            kernels::all_pairs(
                tree_a.leaf_entries(node_a),
                tree_b.leaf_entries(node_b),
                counters,
                &mut |ia, ib| {
                    go_on = emit(ia, ib);
                    go_on
                },
            );
            go_on
        }
        (false, true) => {
            for child in tree_a.child_indices(node_a) {
                if !sync_traverse(tree_a, tree_b, child, idx_b, counters, emit) {
                    return false;
                }
            }
            true
        }
        (true, false) => {
            for child in tree_b.child_indices(node_b) {
                if !sync_traverse(tree_a, tree_b, idx_a, child, counters, emit) {
                    return false;
                }
            }
            true
        }
        (false, false) => {
            // Descend the taller tree first so both reach their leaves together.
            if node_a.level >= node_b.level {
                for child in tree_a.child_indices(node_a) {
                    if !sync_traverse(tree_a, tree_b, child, idx_b, counters, emit) {
                        return false;
                    }
                }
            } else {
                for child in tree_b.child_indices(node_b) {
                    if !sync_traverse(tree_a, tree_b, idx_a, child, counters, emit) {
                        return false;
                    }
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexedNestedLoopJoin, NestedLoopJoin};
    use touch_core::collect_join;
    use touch_geom::{Aabb, Point3};

    fn sample(n: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * 60.0, next() * 60.0, next() * 60.0);
            Aabb::new(min, min + Point3::splat(0.2 + next() * 2.5))
        }))
    }

    #[test]
    fn matches_nested_loop() {
        let a = sample(300, 1);
        let b = sample(350, 2);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        let (pairs, report) = collect_join(&RTreeSyncJoin::paper_default(), &a, &b);
        assert_eq!(pairs, expected);
        assert!(report.counters.node_tests > 0);
        assert!(report.memory_bytes > 0);
    }

    #[test]
    fn comparable_comparisons_to_inl_but_two_trees_of_memory() {
        // The paper: INL and RTree need almost the same number of comparisons, but
        // RTree keeps one tree per dataset and therefore needs more memory.
        let a = sample(400, 3);
        let b = sample(400, 4);
        let (_, inl) = collect_join(&IndexedNestedLoopJoin::paper_default(), &a, &b);
        let (_, rt) = collect_join(&RTreeSyncJoin::paper_default(), &a, &b);
        let ratio = rt.counters.comparisons as f64 / inl.counters.comparisons.max(1) as f64;
        assert!(ratio < 3.0 && ratio > 0.3, "comparison counts should be similar, ratio {ratio}");
        assert!(rt.memory_bytes > inl.memory_bytes);
    }

    #[test]
    fn different_tree_heights_are_handled() {
        // A tiny dataset A (single leaf) joined with a large B exercises the
        // unbalanced descent paths.
        let a = sample(5, 5);
        let b = sample(500, 6);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        let (pairs, _) = collect_join(&RTreeSyncJoin::new(4, 2), &a, &b);
        assert_eq!(pairs, expected);
        let (pairs_rev, _) = collect_join(&RTreeSyncJoin::new(4, 2), &b, &a);
        let expected_rev: Vec<(u32, u32)> = {
            let mut v: Vec<(u32, u32)> = expected.iter().map(|&(x, y)| (y, x)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(pairs_rev, expected_rev);
    }

    #[test]
    fn disjoint_datasets_produce_nothing_cheaply() {
        let a = sample(100, 7);
        let b = Dataset::from_mbrs((0..100).map(|i| {
            let min = Point3::new(1000.0 + i as f64, 1000.0, 1000.0);
            Aabb::new(min, min + Point3::splat(1.0))
        }));
        let (pairs, report) = collect_join(&RTreeSyncJoin::paper_default(), &a, &b);
        assert!(pairs.is_empty());
        assert_eq!(report.counters.comparisons, 0, "root MBRs do not intersect");
    }

    #[test]
    fn empty_inputs() {
        let empty = Dataset::new();
        let b = sample(10, 8);
        let (pairs, _) = collect_join(&RTreeSyncJoin::paper_default(), &empty, &b);
        assert!(pairs.is_empty());
    }
}

//! The plane-sweep join (Section 2.1).

use touch_core::{deliver, kernels, PairSink, SpatialJoinAlgorithm};
use touch_geom::Dataset;
use touch_metrics::{vec_bytes, Phase, RunReport};

/// Plane-sweep join over the full datasets.
///
/// Both datasets are sorted along x and scanned synchronously; objects whose
/// x-intervals overlap are compared. Because the data is only sorted in one
/// dimension, objects far apart in y/z still get compared — the redundant
/// comparisons the paper blames for the plane-sweep's poor showing — but it remains
/// the standard local join inside partition-based approaches.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlaneSweepJoin;

impl PlaneSweepJoin {
    /// Creates the plane-sweep join.
    pub fn new() -> Self {
        PlaneSweepJoin
    }
}

impl SpatialJoinAlgorithm for PlaneSweepJoin {
    fn name(&self) -> String {
        "PS".to_string()
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        let mut counters = std::mem::take(&mut report.counters);

        // Build phase: the sort working copies.
        let (mut sa, mut sb) =
            report.timer.time(Phase::Build, || (a.objects().to_vec(), b.objects().to_vec()));
        report.memory_bytes = vec_bytes(&sa) + vec_bytes(&sb);

        let mut results = 0u64;
        report.timer.time(Phase::Join, || {
            kernels::plane_sweep(&mut sa, &mut sb, &mut counters, &mut |x, y| {
                deliver(sink, x, y, &mut results)
            });
        });
        counters.results += results;
        report.counters = counters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;
    use touch_core::collect_join;
    use touch_geom::{Aabb, Point3};

    fn sample(n: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * 30.0, next() * 30.0, next() * 30.0);
            Aabb::new(min, min + Point3::splat(next() * 2.0))
        }))
    }

    #[test]
    fn agrees_with_nested_loop_with_fewer_comparisons() {
        let a = sample(120, 1);
        let b = sample(150, 2);
        let (nl_pairs, nl_report) = collect_join(&NestedLoopJoin::new(), &a, &b);
        let (ps_pairs, ps_report) = collect_join(&PlaneSweepJoin::new(), &a, &b);
        assert_eq!(nl_pairs, ps_pairs);
        assert!(ps_report.counters.comparisons < nl_report.counters.comparisons);
        assert!(ps_report.memory_bytes > 0, "sorted working copies are accounted");
    }

    #[test]
    fn handles_empty_inputs() {
        let a = sample(10, 3);
        let empty = Dataset::new();
        let (pairs, report) = collect_join(&PlaneSweepJoin::new(), &a, &empty);
        assert!(pairs.is_empty());
        assert_eq!(report.counters.comparisons, 0);
    }
}

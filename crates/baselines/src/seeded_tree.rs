//! Seeded-tree join (Lo & Ravishankar, SIGMOD '94) — Section 2.2.2 of the paper.
//!
//! The seeded tree assumes one dataset (A) is already indexed with an R-tree and uses
//! the *top levels of that index as seeds* to build the R-tree on dataset B: every
//! object of B is routed to the seed slot whose MBR needs the least enlargement, and
//! each slot's objects are bulk-grown into their own subtree. Because the two trees
//! are aligned, the subsequent synchronous traversal compares far fewer bounding
//! boxes than two independently built trees would.
//!
//! Like the octree join, this baseline is discussed in the paper's related work but
//! not part of its measured suite; it completes the "one dataset indexed" design
//! space next to the indexed nested loop.

use crate::rtree_join::sync_traverse;
use touch_core::{deliver, PairSink, SpatialJoinAlgorithm};
use touch_geom::{Aabb, Dataset, SpatialObject};
use touch_index::PackedRTree;
use touch_metrics::{vec_bytes, MemoryUsage, Phase, RunReport};

/// The seeded-tree spatial join.
#[derive(Debug, Clone, Copy)]
pub struct SeededTreeJoin {
    leaf_capacity: usize,
    fanout: usize,
    /// Minimum number of seed slots carved out of the A-tree's top levels.
    min_seeds: usize,
}

impl SeededTreeJoin {
    /// Seeded-tree join with an explicit R-tree configuration and seed count.
    pub fn new(leaf_capacity: usize, fanout: usize, min_seeds: usize) -> Self {
        assert!(min_seeds > 0, "at least one seed slot is required");
        SeededTreeJoin { leaf_capacity, fanout, min_seeds }
    }

    /// The paper-comparable configuration: the R-tree settings of the other R-tree
    /// baselines and 16 seed slots.
    pub fn paper_comparable() -> Self {
        SeededTreeJoin { leaf_capacity: 64, fanout: 2, min_seeds: 16 }
    }

    /// Picks the seed MBRs: the nodes of the highest A-tree level that has at least
    /// `min_seeds` nodes (or the leaf level for shallow trees).
    fn seed_mbrs(&self, tree: &PackedRTree) -> Vec<Aabb> {
        if tree.is_empty() {
            return Vec::new();
        }
        // Walk levels from the root downwards until one is wide enough.
        #[allow(clippy::expect_used)] // is_empty() returned above
        let mut level_nodes: Vec<usize> = vec![tree.root_index().expect("non-empty tree")];
        loop {
            let wide_enough = level_nodes.len() >= self.min_seeds;
            let all_leaves = level_nodes.iter().all(|&i| tree.node(i).is_leaf());
            if wide_enough || all_leaves {
                return level_nodes.iter().map(|&i| tree.node(i).mbr).collect();
            }
            let mut next = Vec::with_capacity(level_nodes.len() * self.fanout);
            for &idx in &level_nodes {
                let node = tree.node(idx);
                if node.is_leaf() {
                    next.push(idx);
                } else {
                    next.extend(tree.child_indices(node));
                }
            }
            level_nodes = next;
        }
    }
}

impl Default for SeededTreeJoin {
    fn default() -> Self {
        Self::paper_comparable()
    }
}

impl SpatialJoinAlgorithm for SeededTreeJoin {
    fn name(&self) -> String {
        "Seeded tree".to_string()
    }

    fn join_into(&self, a: &Dataset, b: &Dataset, sink: &mut dyn PairSink, report: &mut RunReport) {
        let mut counters = std::mem::take(&mut report.counters);

        // The existing index on dataset A.
        let tree_a = report.timer.time(Phase::Build, || {
            PackedRTree::build(a.objects(), self.leaf_capacity, self.fanout)
        });
        let seeds = self.seed_mbrs(&tree_a);

        // Seed the B-tree: route every B object to the slot needing least enlargement,
        // then bulk-grow one subtree per slot.
        let slots: Vec<Vec<SpatialObject>> = report.timer.time(Phase::Assignment, || {
            let mut slots: Vec<Vec<SpatialObject>> = vec![Vec::new(); seeds.len().max(1)];
            for ob in b.iter() {
                let slot = best_slot(&seeds, &ob.mbr);
                slots[slot].push(*ob);
            }
            slots
        });
        let slot_trees: Vec<PackedRTree> = report.timer.time(Phase::Assignment, || {
            slots
                .iter()
                .map(|objs| PackedRTree::build(objs, self.leaf_capacity, self.fanout))
                .collect()
        });

        // Join: synchronous traversal of the A-tree against every grown subtree.
        let mut results = 0u64;
        report.timer.time(Phase::Join, || {
            let mut emit = |ia, ib| deliver(sink, ia, ib, &mut results);
            if let Some(root_a) = tree_a.root_index() {
                for slot_tree in &slot_trees {
                    if let Some(root_b) = slot_tree.root_index() {
                        if !sync_traverse(
                            &tree_a,
                            slot_tree,
                            root_a,
                            root_b,
                            &mut counters,
                            &mut emit,
                        ) {
                            break;
                        }
                    }
                }
            }
        });

        counters.results += results;
        report.counters = counters;
        report.memory_bytes = tree_a.memory_bytes()
            + slot_trees.iter().map(MemoryUsage::memory_bytes).sum::<usize>()
            + slots.iter().map(vec_bytes).sum::<usize>();
    }
}

/// The slot whose seed MBR needs the least volume enlargement to cover `mbr`
/// (ties broken by the smaller resulting volume, then by index).
fn best_slot(seeds: &[Aabb], mbr: &Aabb) -> usize {
    if seeds.is_empty() {
        return 0;
    }
    let mut best = 0usize;
    let mut best_enlargement = f64::INFINITY;
    let mut best_volume = f64::INFINITY;
    for (i, seed) in seeds.iter().enumerate() {
        let grown = seed.union(mbr);
        let enlargement = grown.volume() - seed.volume();
        if enlargement < best_enlargement
            || (enlargement == best_enlargement && grown.volume() < best_volume)
        {
            best = i;
            best_enlargement = enlargement;
            best_volume = grown.volume();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestedLoopJoin;
    use touch_core::collect_join;
    use touch_geom::Point3;

    fn sample(n: usize, seed: u64, spread: f64) -> Dataset {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        Dataset::from_mbrs((0..n).map(|_| {
            let min = Point3::new(next() * spread, next() * spread, next() * spread);
            Aabb::new(min, min + Point3::splat(0.2 + next() * 2.5))
        }))
    }

    #[test]
    fn matches_nested_loop() {
        let a = sample(300, 1, 50.0);
        let b = sample(450, 2, 50.0);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        let (pairs, report) = collect_join(&SeededTreeJoin::paper_comparable(), &a, &b);
        assert_eq!(pairs, expected);
        assert!(report.memory_bytes > 0);
        // No duplicates: each B object lives in exactly one slot tree.
        let mut dedup = pairs.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), pairs.len());
    }

    #[test]
    fn seed_slots_cover_the_a_tree_width() {
        let a = sample(2_000, 3, 80.0);
        let join = SeededTreeJoin::new(8, 2, 16);
        let tree = PackedRTree::build(a.objects(), 8, 2);
        let seeds = join.seed_mbrs(&tree);
        assert!(seeds.len() >= 16);
        // Every seed is contained in the root MBR.
        let root = tree.root().unwrap().mbr;
        assert!(seeds.iter().all(|s| root.contains(s)));
    }

    #[test]
    fn best_slot_prefers_containing_seed() {
        let seeds = vec![
            Aabb::new(Point3::ORIGIN, Point3::splat(10.0)),
            Aabb::new(Point3::splat(20.0), Point3::splat(30.0)),
        ];
        let inside_second = Aabb::new(Point3::splat(22.0), Point3::splat(23.0));
        assert_eq!(best_slot(&seeds, &inside_second), 1);
        let inside_first = Aabb::new(Point3::splat(1.0), Point3::splat(2.0));
        assert_eq!(best_slot(&seeds, &inside_first), 0);
        assert_eq!(best_slot(&[], &inside_first), 0);
    }

    #[test]
    fn alternate_configurations_agree() {
        let a = sample(250, 5, 40.0);
        let b = sample(350, 6, 40.0);
        let (expected, _) = collect_join(&NestedLoopJoin::new(), &a, &b);
        for (cap, fanout, seeds) in [(4, 2, 4), (16, 4, 8), (64, 2, 64)] {
            let (pairs, _) = collect_join(&SeededTreeJoin::new(cap, fanout, seeds), &a, &b);
            assert_eq!(
                pairs, expected,
                "configuration ({cap},{fanout},{seeds}) changed the result"
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let empty = Dataset::new();
        let b = sample(10, 7, 10.0);
        let (pairs, _) = collect_join(&SeededTreeJoin::default(), &empty, &b);
        assert!(pairs.is_empty());
        let (pairs, _) = collect_join(&SeededTreeJoin::default(), &b, &empty);
        assert!(pairs.is_empty());
    }
}

//! Offline stub of the `serde` facade.
//!
//! The workspace is built without crates.io access (see `vendor/README.md`). The
//! crates only *derive* `Serialize`/`Deserialize` to keep their types ready for real
//! serde; no code path serializes through the traits. This stub provides the two
//! marker traits and re-exports the no-op derives so the `#[derive(...)]` attributes
//! compile unchanged. Swapping in the real serde is a one-line change in the root
//! `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

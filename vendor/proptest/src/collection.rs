//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;

/// A strategy generating `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

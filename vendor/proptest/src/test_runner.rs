//! Test-runner configuration and the deterministic RNG behind the stub.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator seeded from the test name, so every run of a
/// property test samples the same cases (reproducible failures without shrinking).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

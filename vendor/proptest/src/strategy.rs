//! The [`Strategy`] trait and the built-in strategies (ranges, tuples, `prop_map`).

use crate::test_runner::TestRng;
use core::ops::Range;

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest (where strategies produce shrinkable value *trees*), the
/// stub's strategies sample plain values — enough to drive the workspace's property
/// tests deterministically.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

//! Offline stub of the `criterion` benchmark harness.
//!
//! The workspace is built without crates.io access (see `vendor/README.md`), so the
//! real criterion cannot be fetched. This stub implements the API surface the
//! `touch-bench` targets use — `Criterion::benchmark_group`, per-group sample /
//! warm-up / measurement configuration, `bench_with_input` with [`BenchmarkId`]s and
//! `Bencher::iter` — with honest wall-clock measurement (warm-up loop, then timed
//! samples, median/mean/min/max reporting). `cargo bench -- --test` is honoured
//! like the real criterion: each routine runs exactly once (CI's
//! compile-and-smoke mode). It performs no statistical regression analysis and
//! writes no HTML reports; swap in the real criterion by editing the root
//! `Cargo.toml` when network access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

/// Measurement settings shared by a group (mirrors the criterion knobs we use).
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    /// `cargo bench -- --test` mode (mirroring the real criterion): every routine
    /// runs exactly once, with no warm-up — a compile-and-smoke check, not a
    /// measurement. CI uses this to keep bench targets honest without paying for
    /// full benchmark runs.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self::from_flags(std::env::args())
    }
}

impl Criterion {
    /// Builds a manager from command-line-style flags (only `--test` is understood;
    /// everything else is ignored, as the real criterion does for unknown flags).
    fn from_flags<I: IntoIterator<Item = String>>(args: I) -> Self {
        Criterion { test_mode: args.into_iter().any(|a| a == "--test") }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
            test_mode,
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the sampling time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher =
            Bencher { settings: self.settings.clone(), stats: None, test_mode: self.test_mode };
        f(&mut bencher, input);
        let label = format!("{}/{}/{}", self.name, id.function, id.parameter);
        if self.test_mode {
            match bencher.stats {
                Some(_) => println!("Testing {label} ... Success"),
                None => println!("Testing {label} ... no routine (Bencher::iter never called)"),
            }
            return;
        }
        match bencher.stats {
            Some(stats) => println!(
                "{label}: median {} (mean {}, min {}, max {}, {} samples)",
                fmt_duration(stats.median),
                fmt_duration(stats.mean),
                fmt_duration(stats.min),
                fmt_duration(stats.max),
                stats.samples,
            ),
            None => println!("{label}: no measurement (Bencher::iter never called)"),
        }
    }

    /// Ends the group (stats are printed eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
struct Stats {
    median: Duration,
    mean: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
}

/// Runs and times a benchmark routine.
pub struct Bencher {
    settings: Settings,
    stats: Option<Stats>,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`: warm-up for the configured duration, then up to
    /// `sample_size` timed samples within the measurement budget. In `--test` mode
    /// the routine runs exactly once, with no warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            let start = Instant::now();
            std::hint::black_box(routine());
            let once = start.elapsed();
            self.stats = Some(Stats { median: once, mean: once, min: once, max: once, samples: 1 });
            return;
        }
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.settings.warm_up_time {
            std::hint::black_box(routine());
        }
        let mut samples = Vec::with_capacity(self.settings.sample_size);
        let deadline = Instant::now() + self.settings.measurement_time;
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_unstable();
        let total: Duration = samples.iter().sum();
        self.stats = Some(Stats {
            median: samples[samples.len() / 2],
            mean: total / samples.len() as u32,
            min: samples[0],
            max: *samples.last().expect("at least one sample"),
            samples: samples.len(),
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Defines a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_stats() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("noop", 1), &(), |b, _| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran >= 3, "routine must run during warm-up and sampling");
    }

    #[test]
    fn test_flag_runs_each_routine_exactly_once() {
        let mut c = Criterion::from_flags(["--test".to_string()]);
        let mut group = c.benchmark_group("test");
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("noop", 1), &(), |b, _| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert_eq!(ran, 1, "--test mode must run the routine exactly once");
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let c = Criterion::from_flags(["--bench".to_string(), "foo".to_string()]);
        assert!(!c.test_mode);
        assert!(Criterion::from_flags(["--test".to_string()]).test_mode);
    }

    #[test]
    fn duration_formatting_is_compact() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.0 µs");
    }
}

//! Offline stub of the `rand 0.8` API surface this workspace uses.
//!
//! Built without crates.io access (see `vendor/README.md`), the workspace needs a
//! seeded uniform generator for its workload generators — nothing more. This stub
//! provides [`rngs::StdRng`] (backed by SplitMix64 instead of ChaCha12, so the
//! *streams* differ from the real crate while the API and the determinism guarantees
//! are identical), [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`]/[`Rng::gen`]
//! for the types the generators sample (`f64` and the unsigned index types).

use core::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Types that can be sampled from their "standard" distribution (`[0, 1)` for floats).
pub trait StandardSample {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)` (53-bit mantissa method).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + unit_f64(rng.next_u64()) * (hi - lo);
        // Guard against floating-point rounding landing exactly on `hi`.
        if v < hi {
            v
        } else {
            lo
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8);

/// The user-facing sampling interface (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the half-open `range`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: a seeded SplitMix64 generator.
    ///
    /// SplitMix64 passes BigCrush for the statistical needs of this workspace
    /// (uniform workload generation); it is *not* the ChaCha12 generator of the real
    /// crate, so streams differ from real `StdRng` for the same seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.gen_range(3.0..9.0f64);
            assert!((3.0..9.0).contains(&f));
            let i = r.gen_range(5usize..15);
            assert!((5..15).contains(&i));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}

//! Offline stub of `serde_derive`.
//!
//! This workspace is built in environments without access to crates.io, so the real
//! `serde_derive` cannot be fetched. Nothing in the workspace serializes data through
//! serde (reports are rendered to CSV/markdown by hand), the derives only exist so
//! that downstream users of the real serde could plug it in. The stub therefore
//! expands `#[derive(Serialize, Deserialize)]` to nothing while still accepting
//! `#[serde(...)]` helper attributes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

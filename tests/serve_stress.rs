//! Stress tests for the `touch-serve` concurrency protocol: a writer hammering
//! insert/remove/publish while reader threads validate every snapshot they
//! observe. What the suite pins down:
//!
//! * **snapshot stability** — a held [`Generation`](touch::Generation) never
//!   changes, no matter how many generations the writer publishes past it:
//!   joining against it always reproduces the brute force over its own frozen
//!   A-objects,
//! * **monotonic publication** — versions observed by any one thread never go
//!   backwards,
//! * **final convergence** — once the writer stops, the served contents are
//!   exactly the writer's logical live set,
//! * **hazard-slot contention** — with a single hazard slot shared by many
//!   readers, rotation still never frees a generation out from under a reader.
//!
//! Randomness comes from an inline LCG so every run replays the same schedule
//! of mutations (the *interleaving* with readers is what varies).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use touch::{
    Aabb, AssignmentBuffer, CollectingSink, Counters, Dataset, JoinOrder, JoinServer,
    LocalJoinScratch, Point3, ServeConfig, SpatialObject, TouchConfig,
};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn boxed(&mut self) -> Aabb {
        let min = Point3::new(
            self.below(900) as f64 / 100.0,
            self.below(900) as f64 / 100.0,
            self.below(900) as f64 / 100.0,
        );
        Aabb::new(min, min + Point3::splat(0.5 + self.below(100) as f64 / 100.0))
    }
}

fn touch_cfg() -> TouchConfig {
    TouchConfig { partitions: 16, join_order: JoinOrder::TreeOnA, ..TouchConfig::default() }
}

fn brute(a_objects: &[SpatialObject], batch: &[SpatialObject]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for a in a_objects {
        for b in batch {
            if a.mbr.intersects(&b.mbr) {
                out.push((a.id, b.id));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Joins `batch` against a frozen generation exactly the way a reader does —
/// but against *this* generation, not whichever is current.
fn join_generation(
    snapshot: &touch::Generation,
    batch: &[SpatialObject],
    cfg: &TouchConfig,
) -> Vec<(u32, u32)> {
    let params = cfg
        .local_join_params(snapshot.a_cell_floor().max(cfg.min_local_cell_size_of_objects(batch)));
    let mut buffer = AssignmentBuffer::new();
    let mut scratch = LocalJoinScratch::default();
    let mut counters = Counters::default();
    buffer.assign(snapshot.tree(), batch, &mut counters);
    let mut pairs = Vec::new();
    buffer.join(snapshot.tree(), &params, &mut scratch, &mut counters, &mut |a, b| {
        pairs.push((a, b));
        true
    });
    pairs.sort_unstable();
    pairs
}

#[test]
fn held_snapshots_stay_valid_under_a_mutation_storm() {
    const WRITER_ROUNDS: u64 = 60;
    const READER_ITERATIONS: usize = 120;
    const READERS: usize = 3;

    let mut rng = Lcg(0x5eed_cafe);
    let mut a = Dataset::new();
    for _ in 0..150 {
        a.push_mbr(rng.boxed());
    }
    let batch: Arc<Vec<SpatialObject>> =
        Arc::new((0..120u32).map(|i| SpatialObject::new(i, rng.boxed())).collect());

    let config = ServeConfig { touch: touch_cfg(), ..ServeConfig::default() };
    let server = Arc::new(JoinServer::new(&a, config));
    let start = Arc::new(Barrier::new(READERS + 1));
    let stopped = Arc::new(AtomicBool::new(false));

    let writer = {
        let server = Arc::clone(&server);
        let start = Arc::clone(&start);
        let stopped = Arc::clone(&stopped);
        let mut live: Vec<u32> = (0..a.len() as u32).collect();
        thread::spawn(move || {
            start.wait();
            let mut rng = Lcg(0xfeed_beef);
            for round in 0..WRITER_ROUNDS {
                for _ in 0..=rng.below(4) {
                    if rng.below(3) == 0 && live.len() > 20 {
                        let victim = live.swap_remove(rng.below(live.len() as u64) as usize);
                        assert!(server.remove(victim), "{victim} should have been live");
                    } else {
                        live.push(server.insert(rng.boxed()));
                    }
                }
                assert_eq!(server.publish(), round + 1, "versions advance one per publish");
            }
            stopped.store(true, Ordering::SeqCst);
            live
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let server = Arc::clone(&server);
            let start = Arc::clone(&start);
            let batch = Arc::clone(&batch);
            thread::spawn(move || {
                start.wait();
                let cfg = touch_cfg();
                let mut reader = server.reader();
                let mut last_version = 0u64;
                let mut exact_hits = 0usize;
                for _ in 0..READER_ITERATIONS {
                    // A held snapshot must equal the brute force over its own
                    // frozen contents, however far the writer has moved on.
                    let held = server.snapshot();
                    assert!(held.version() >= last_version, "versions went backwards");
                    last_version = held.version();
                    assert_eq!(
                        join_generation(&held, &batch, &cfg),
                        brute(held.tree().a_objects(), &batch),
                        "generation {} was corrupted while held",
                        held.version()
                    );

                    // Opportunistic end-to-end check: when the reader's own
                    // query lands on a version we can still observe, its
                    // result must be that generation's exact answer.
                    let mut sink = CollectingSink::new();
                    let report = reader.query(&batch, &mut sink);
                    let version = report.generation.expect("serve reports stamp a generation");
                    assert!(version >= last_version);
                    let after = server.snapshot();
                    if after.version() == version {
                        assert_eq!(sink.sorted_pairs(), brute(after.tree().a_objects(), &batch));
                        exact_hits += 1;
                    }
                }
                exact_hits
            })
        })
        .collect();

    let live = writer.join().expect("writer panicked");
    let exact_hits: usize = readers.into_iter().map(|r| r.join().expect("reader panicked")).sum();
    assert!(exact_hits > 0, "no reader ever caught a stable generation");

    // Convergence: the final generation serves exactly the writer's live set.
    let final_snapshot = server.snapshot();
    assert_eq!(final_snapshot.version(), WRITER_ROUNDS);
    let mut served: Vec<u32> = final_snapshot.tree().a_objects().iter().map(|o| o.id).collect();
    let mut expected = live;
    served.sort_unstable();
    expected.sort_unstable();
    assert_eq!(served, expected, "served contents diverged from the writer's live set");
    let mut sink = CollectingSink::new();
    let _ = server.reader().query(&batch, &mut sink);
    assert_eq!(sink.sorted_pairs(), brute(final_snapshot.tree().a_objects(), &batch));
}

/// One hazard slot, many readers, a publisher rotating generations as fast as
/// it can: reclamation must still never free a generation a reader holds
/// (reads would return garbage pairs — caught by the per-snapshot brute
/// force), and slot contention must degrade to waiting, not to corruption.
#[test]
fn a_single_hazard_slot_survives_rotation_pressure() {
    const PUBLISHES: u64 = 150;
    const READERS: usize = 6;

    let mut rng = Lcg(0x0dd_ba11);
    let mut a = Dataset::new();
    for _ in 0..60 {
        a.push_mbr(rng.boxed());
    }
    let batch: Arc<Vec<SpatialObject>> =
        Arc::new((0..40u32).map(|i| SpatialObject::new(i, rng.boxed())).collect());

    let config = ServeConfig { touch: touch_cfg(), delta_limit: None, hazard_slots: 1 };
    let server = Arc::new(JoinServer::new(&a, config));
    let start = Arc::new(Barrier::new(READERS + 1));
    let stopped = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let server = Arc::clone(&server);
            let start = Arc::clone(&start);
            let stopped = Arc::clone(&stopped);
            let batch = Arc::clone(&batch);
            thread::spawn(move || {
                start.wait();
                let cfg = touch_cfg();
                let mut validated = 0usize;
                while !stopped.load(Ordering::SeqCst) || validated == 0 {
                    let held = server.snapshot();
                    assert_eq!(
                        join_generation(&held, &batch, &cfg),
                        brute(held.tree().a_objects(), &batch),
                        "generation {} freed or corrupted while held",
                        held.version()
                    );
                    validated += 1;
                }
                validated
            })
        })
        .collect();

    start.wait();
    let mut rng = Lcg(0xbad_5eed);
    let mut inserted: Vec<u32> = Vec::new();
    for round in 0..PUBLISHES {
        // Alternate growth and shrink so both fold directions rotate through.
        if round % 2 == 0 || inserted.is_empty() {
            inserted.push(server.insert(rng.boxed()));
        } else {
            let victim = inserted.swap_remove(rng.below(inserted.len() as u64) as usize);
            assert!(server.remove(victim));
        }
        assert_eq!(server.publish(), round + 1);
    }
    stopped.store(true, Ordering::SeqCst);
    for reader in readers {
        assert!(reader.join().expect("reader panicked") > 0);
    }
    assert_eq!(server.generation(), PUBLISHES);
}

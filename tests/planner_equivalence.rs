//! Planner determinism and equivalence: `Engine::Auto` must be a pure
//! *dispatcher* — the plan it derives, executed by whichever engine its strategy
//! names, produces **bit-identical pairs and counters** to explicitly running
//! that engine on the same plan, at every thread count and for every epoch
//! split. And the statistics the planner runs on must accumulate exactly:
//! merging per-epoch [`DatasetStats`] equals collecting them in one shot.

use proptest::prelude::*;
use touch::{
    AutoEngine, CollectingSink, Counters, Dataset, DatasetStats, Engine, ExecutionStrategy,
    FirstKSink, JoinPlanner, JoinQuery, PlanEnv, RunReport, SpatialJoinAlgorithm,
    StreamingTouchJoin, SyntheticDistribution, SyntheticSpec,
};

fn synthetic(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 100.0, max_object_side: 2.0 },
    }
    .generate(seed)
}

fn clustered(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Clustered { clusters: 8, std_dev: 22.0 },
        space: touch::datagen::SpaceConfig { size: 100.0, max_object_side: 2.0 },
    }
    .generate(seed)
}

fn run(
    engine: impl SpatialJoinAlgorithm,
    a: &Dataset,
    b: &Dataset,
) -> (Vec<(u32, u32)>, RunReport) {
    let mut sink = CollectingSink::new();
    let report = JoinQuery::new(a, b).engine(engine).run(&mut sink);
    (sink.sorted_pairs(), report)
}

/// `Engine::Auto` vs. the explicitly-chosen engine it resolves to, across
/// thread budgets that exercise the sequential (1) and parallel (2/4/8)
/// strategies. Pairs and every counter must match bit-for-bit.
#[test]
fn auto_matches_the_engine_it_resolves_to_at_every_thread_count() {
    // Workload 1 is large enough (|A| + |B| ≥ the planner's parallel_min_work)
    // to resolve to the parallel engine whenever threads are available;
    // workload 2 stays below the bar and must resolve sequential regardless.
    let workloads =
        [(synthetic(9000, 1), synthetic(10_000, 2)), (clustered(1000, 3), synthetic(700, 4))];
    for (wl, (a, b)) in workloads.iter().enumerate() {
        for threads in [1, 2, 4, 8] {
            let auto = AutoEngine::with_threads(threads);
            let plan = auto.plan_for(a, b).expect("auto engines always plan");
            if wl == 0 && threads > 1 {
                assert_eq!(
                    plan.strategy,
                    ExecutionStrategy::Parallel { threads },
                    "the large workload must go parallel at {threads} threads"
                );
            } else {
                assert_eq!(plan.strategy, ExecutionStrategy::Sequential, "workload {wl}");
            }

            let (auto_pairs, auto_report) = run(&auto, a, b);
            let (resolved_pairs, resolved_report) = run(Engine::Planned(plan), a, b);

            assert_eq!(auto_pairs, resolved_pairs, "threads = {threads}: pairs diverged");
            assert_eq!(
                auto_report.counters, resolved_report.counters,
                "threads = {threads}: counters diverged"
            );
            let executed = auto_report.plan.expect("auto records its plan");
            assert_eq!(executed.strategy, plan.strategy.label());
            assert!(
                auto_report.algorithm.starts_with("TOUCH-AUTO → "),
                "the report names the resolved engine, got {}",
                auto_report.algorithm
            );
        }
    }
}

/// The same plan executed by all three engines is the same computation.
#[test]
fn one_plan_is_bit_identical_on_every_engine() {
    let a = synthetic(800, 5);
    let b = synthetic(1000, 6);
    let plan = AutoEngine::with_threads(1).plan_for(&a, &b).unwrap();
    let (seq_pairs, seq_report) =
        run(Engine::Planned(plan.with_strategy(ExecutionStrategy::Sequential)), &a, &b);
    for strategy in [
        ExecutionStrategy::Parallel { threads: 2 },
        ExecutionStrategy::Parallel { threads: 8 },
        ExecutionStrategy::Streaming { threads: 1 },
        ExecutionStrategy::Streaming { threads: 3 },
    ] {
        let (pairs, report) = run(Engine::Planned(plan.with_strategy(strategy)), &a, &b);
        assert_eq!(pairs, seq_pairs, "{strategy:?}: pairs diverged");
        assert_eq!(report.counters, seq_report.counters, "{strategy:?}: counters diverged");
    }
}

/// Auto through the unified query builder (the zero-config path) still answers
/// correctly and reports its plan — including the distance-join translation.
#[test]
fn zero_config_query_is_correct_for_distance_joins() {
    let a = synthetic(400, 7);
    let b = synthetic(500, 8);
    for eps in [0.0, 2.5] {
        let mut auto_sink = CollectingSink::new();
        let auto_report =
            JoinQuery::new(&a, &b).within_distance(eps).engine(Engine::Auto).run(&mut auto_sink);
        let mut fixed_sink = CollectingSink::new();
        let _ = JoinQuery::new(&a, &b)
            .within_distance(eps)
            .engine(Engine::touch())
            .run(&mut fixed_sink);
        assert_eq!(
            auto_sink.sorted_pairs(),
            fixed_sink.sorted_pairs(),
            "eps = {eps}: auto changed the answer"
        );
        assert_eq!(auto_report.epsilon, eps);
        assert!(auto_report.plan.is_some(), "the executed plan must be on the report");
    }
}

/// A planned streaming engine is epoch-split invariant: any batching of the
/// probe side reproduces the single-push run exactly — pairs and counters —
/// because the plan's parameters are pinned for the whole stream.
#[test]
fn planned_streaming_is_epoch_split_invariant() {
    let a = synthetic(600, 9);
    let b = synthetic(900, 10);
    let build = || {
        StreamingTouchJoin::build_planned(
            &a,
            touch::StreamingConfig::default(),
            JoinPlanner::default(),
        )
    };

    let mut reference = build();
    let mut ref_sink = CollectingSink::new();
    let _ = reference.push_batch(b.objects(), &mut ref_sink);
    let ref_pairs = ref_sink.sorted_pairs();
    let ref_counters = reference.cumulative_report().counters;

    for epochs in [2, 3, 7, 16] {
        let mut engine = build();
        let mut sink = CollectingSink::new();
        let chunk = b.len().div_ceil(epochs).max(1);
        for batch in b.objects().chunks(chunk) {
            let _ = engine.push_batch(batch, &mut sink);
        }
        assert_eq!(sink.sorted_pairs(), ref_pairs, "epochs = {epochs}: pairs diverged");
        assert_eq!(
            engine.cumulative_report().counters,
            ref_counters,
            "epochs = {epochs}: counters must add up exactly"
        );
        // The stream statistics the next re-plan would use are split-invariant too.
        assert_eq!(engine.stream_stats().count(), b.len());
        assert_eq!(engine.stream_stats().mbr(), reference.stream_stats().mbr());
    }
}

/// Planning twice over the same inputs yields the same plan, and the planner's
/// knob derivation is independent of the thread budget (only the strategy moves).
#[test]
fn planning_is_deterministic_and_thread_budget_only_moves_the_strategy() {
    let a = synthetic(2000, 11);
    let b = clustered(1500, 12);
    let (sa, sb) = (DatasetStats::from_dataset(&a), DatasetStats::from_dataset(&b));
    let planner = JoinPlanner::default();
    let first = planner.plan(&sa, &sb, &PlanEnv::sequential().with_threads(4));
    let second = planner.plan(&sa, &sb, &PlanEnv::sequential().with_threads(4));
    assert_eq!(first, second, "planning must be deterministic");
    for threads in [1, 2, 8] {
        let other = planner.plan(&sa, &sb, &PlanEnv::sequential().with_threads(threads));
        assert_eq!(other.with_strategy(first.strategy), first, "knobs moved with the budget");
    }
}

/// A tiny pair budget steers Auto to the early-terminating sequential engine —
/// and the query still stops at exactly k pairs.
#[test]
fn small_pair_budgets_resolve_to_sequential_early_termination() {
    let a = synthetic(3000, 13);
    let b = synthetic(3000, 14);
    let mut sink = FirstKSink::new(4);
    let report = JoinQuery::new(&a, &b).engine(AutoEngine::with_threads(8)).run(&mut sink);
    assert_eq!(sink.count(), 4);
    assert_eq!(report.result_pairs(), 4);
    let executed = report.plan.expect("auto records its plan");
    assert_eq!(executed.strategy, "sequential", "a 4-pair budget must not spin up workers");
    assert!(
        report.counters.comparisons < (a.len() * b.len()) as u64 / 10,
        "early termination must cut the scan short"
    );
}

// `DatasetStats` accumulation over real epoch pushes equals one-shot stats —
// the foundation the per-stream re-planning rests on.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stats_merge_equals_one_shot(
        n in 1usize..400,
        seed in 0u64..1000,
        epochs in 1usize..12,
    ) {
        let ds = synthetic(n, seed.wrapping_add(100));
        let one_shot = DatasetStats::from_dataset(&ds);
        let chunk = ds.len().div_ceil(epochs).max(1);
        let mut merged = DatasetStats::new();
        for batch in ds.objects().chunks(chunk) {
            merged.merge(&DatasetStats::from_objects(batch));
        }
        prop_assert_eq!(merged.count(), one_shot.count());
        prop_assert_eq!(merged.mbr(), one_shot.mbr());
        for axis in 0..3 {
            prop_assert_eq!(
                merged.extent_histogram(axis),
                one_shot.extent_histogram(axis),
                "histograms must merge exactly"
            );
            let (m, o) = (merged.mean_side(axis), one_shot.mean_side(axis));
            prop_assert!((m - o).abs() <= 1e-9 * o.abs().max(1.0), "mean side drifted: {} vs {}", m, o);
        }
    }

    /// Plans derived from merged stats equal plans derived from one-shot stats:
    /// the f64 sum tolerance never reaches the planner's decisions for these
    /// workloads, so a streaming engine that re-plans from accumulated epochs
    /// decides exactly like one that saw the stream whole.
    #[test]
    fn plans_from_merged_stats_match_one_shot_plans(
        n in 64usize..600,
        seed in 0u64..500,
        epochs in 1usize..8,
    ) {
        let a = synthetic(200, seed.wrapping_add(7000));
        let b = synthetic(n, seed.wrapping_add(9000));
        let sa = DatasetStats::from_dataset(&a);
        let one_shot = DatasetStats::from_dataset(&b);
        let chunk = b.len().div_ceil(epochs).max(1);
        let mut merged = DatasetStats::new();
        for batch in b.objects().chunks(chunk) {
            merged.merge(&DatasetStats::from_objects(batch));
        }
        let planner = JoinPlanner::default();
        let env = PlanEnv::sequential().with_threads(4);
        let plan_one_shot = planner.plan_streaming(&sa, &one_shot, &env);
        let plan_merged = planner.plan_streaming(&sa, &merged, &env);
        prop_assert_eq!(plan_one_shot.partitions, plan_merged.partitions);
        prop_assert_eq!(plan_one_shot.fanout, plan_merged.fanout);
        prop_assert_eq!(plan_one_shot.params.allpairs_max_a, plan_merged.params.allpairs_max_a);
        let (c1, c2) = (plan_one_shot.params.min_cell_size, plan_merged.params.min_cell_size);
        prop_assert!((c1 - c2).abs() <= 1e-9 * c1.abs().max(1.0), "cell floor drifted: {} vs {}", c1, c2);
    }
}

/// Sanity anchor: the counters equality above is meaningful — a *different*
/// plan really does produce different counters on these workloads.
#[test]
fn different_plans_are_observably_different() {
    let a = synthetic(900, 1);
    let b = synthetic(1200, 2);
    let plan = AutoEngine::with_threads(1).plan_for(&a, &b).unwrap();
    let (_, planned) = run(Engine::Planned(plan), &a, &b);
    let (_, paper) = run(Engine::touch(), &a, &b);
    assert_eq!(planned.result_pairs(), paper.result_pairs(), "answers agree…");
    assert_ne!(
        Counters { results: 0, ..planned.counters },
        Counters { results: 0, ..paper.counters },
        "…but the planned configuration does different work than the paper defaults"
    );
}

//! Tracing is observational: attaching an [`ExecTrace`] to any engine changes
//! neither the pairs nor a single counter, at any thread count — the traced and
//! untraced runs are the *same computation*, one of them narrated. Plus the
//! histogram algebra the trace summaries rest on: merging is exact, associative
//! and commutative, so worker-sharded and epoch-split recordings aggregate to
//! the one-shot answer.

use proptest::prelude::*;
use touch::{
    CollectingSink, Dataset, ExecTrace, Histogram, JoinQuery, OneShotStreaming, ParallelTouchJoin,
    RunReport, SpatialJoinAlgorithm, StreamingConfig, StreamingTouchJoin, SyntheticDistribution,
    SyntheticSpec, TouchJoin, TraceSink,
};

const EPS: f64 = 1.5;

fn synthetic(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 60.0, max_object_side: 2.0 },
    }
    .generate(seed)
}

/// The three TOUCH engines at a given worker budget.
fn engines(threads: usize) -> Vec<(&'static str, Box<dyn SpatialJoinAlgorithm>)> {
    vec![
        ("touch", Box::new(TouchJoin::default()) as Box<dyn SpatialJoinAlgorithm>),
        ("parallel", Box::new(ParallelTouchJoin::with_threads(threads))),
        (
            "streaming",
            Box::new(OneShotStreaming::new(StreamingConfig {
                threads,
                ..StreamingConfig::default()
            })),
        ),
    ]
}

fn run(
    algo: &dyn SpatialJoinAlgorithm,
    a: &Dataset,
    b: &Dataset,
    trace: Option<&ExecTrace>,
) -> (Vec<(u32, u32)>, RunReport) {
    let mut sink = CollectingSink::new();
    let mut query = JoinQuery::new(a, b).within_distance(EPS).engine(algo);
    if let Some(trace) = trace {
        query = query.trace(trace);
    }
    let report = query.run(&mut sink);
    (sink.sorted_pairs(), report)
}

/// The tentpole obligation: `NoTrace` vs. a recording `ExecTrace`, three
/// engines × 1/2/4/8 threads — pairs AND counters bit-identical.
#[test]
fn tracing_changes_nothing_for_every_engine_and_thread_count() {
    let a = synthetic(700, 41);
    let b = synthetic(900, 42);
    for threads in [1, 2, 4, 8] {
        for (name, algo) in engines(threads) {
            let (plain_pairs, plain_report) = run(algo.as_ref(), &a, &b, None);
            let trace = ExecTrace::new();
            let (traced_pairs, traced_report) = run(algo.as_ref(), &a, &b, Some(&trace));

            assert_eq!(traced_pairs, plain_pairs, "{name}({threads}): pairs diverged");
            assert_eq!(
                traced_report.counters, plain_report.counters,
                "{name}({threads}): counters diverged"
            );
            assert!(!trace.is_empty(), "{name}({threads}): the trace must have recorded");
            let summary = traced_report.trace.expect("traced runs carry a summary");
            assert_eq!(
                summary.pairs_per_node.sum,
                plain_report.result_pairs(),
                "{name}({threads}): every emitted pair is attributed to a node join"
            );
            assert!(plain_report.trace.is_none(), "untraced runs stay lean");
        }
    }
}

/// The per-node candidate skew the trace reports is a property of the plan,
/// not of the schedule: the parallel engine's histogram equals the sequential
/// one at every width, and the attributed candidates never exceed the
/// comparison counter they are carved out of.
#[test]
fn candidate_histograms_are_schedule_independent() {
    let a = synthetic(600, 43);
    let b = synthetic(800, 44);
    let trace = ExecTrace::new();
    let (_, report) = run(&TouchJoin::default(), &a, &b, Some(&trace));
    let reference = report.trace.expect("traced");
    assert!(reference.candidates.sum <= report.counters.comparisons);
    for threads in [2, 4, 8] {
        let trace = ExecTrace::new();
        let (_, report) = run(&ParallelTouchJoin::with_threads(threads), &a, &b, Some(&trace));
        let summary = report.trace.expect("traced");
        assert_eq!(
            summary.candidates, reference.candidates,
            "threads = {threads}: candidate skew must not depend on scheduling"
        );
        assert_eq!(summary.pairs_per_node, reference.pairs_per_node, "threads = {threads}");
    }
}

/// Epoch-split invariance extends to traced streams: however the probe side is
/// batched, the traced stream emits the same pairs and counters as the
/// untraced one, and its summary counts one epoch per push.
#[test]
fn traced_streams_are_epoch_split_invariant() {
    let a = synthetic(500, 45);
    let b = synthetic(700, 46);
    let reference = {
        let mut engine = StreamingTouchJoin::build_extended(&a, EPS, StreamingConfig::default());
        let mut sink = CollectingSink::new();
        let _ = engine.push_batch(b.objects(), &mut sink);
        (sink.sorted_pairs(), engine.cumulative_report().counters)
    };
    for epochs in [1, 3, 8] {
        let trace = ExecTrace::new();
        let mut engine = StreamingTouchJoin::build_extended(&a, EPS, StreamingConfig::default());
        let mut sink = CollectingSink::new();
        let chunk = b.len().div_ceil(epochs).max(1);
        let mut pushes = 0;
        for batch in b.objects().chunks(chunk) {
            let _ = engine.push_batch_traced(batch, &mut sink, &trace);
            pushes += 1;
        }
        assert_eq!(sink.sorted_pairs(), reference.0, "epochs = {epochs}: pairs diverged");
        assert_eq!(
            engine.cumulative_report().counters,
            reference.1,
            "epochs = {epochs}: counters diverged"
        );
        let summary = trace.summary().expect("recording sink summarises");
        assert_eq!(summary.epochs, pushes, "epochs = {epochs}");
    }
}

/// The traced run exports well-formed artifacts: a Chrome `trace_events` JSON
/// document with one complete event per recorded span, and a text profile that
/// names every phase.
#[test]
fn trace_exports_are_well_formed() {
    let a = synthetic(400, 47);
    let b = synthetic(500, 48);
    let trace = ExecTrace::new();
    let _ = run(&ParallelTouchJoin::with_threads(4), &a, &b, Some(&trace));
    let chrome = trace.to_chrome_json();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("\"name\":\"node-join\""));
    assert!(chrome.trim_end().ends_with('}'));
    let profile = trace.text_profile();
    for needle in ["phase build", "phase assignment", "phase join", "candidates/node"] {
        assert!(profile.contains(needle), "profile lacks {needle:?}:\n{profile}");
    }
}

fn one_shot(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

// The histogram algebra: merge is exact over any split, associative and
// commutative — which is what makes worker-sharded and epoch-split trace
// aggregation equal the one-shot recording.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn histogram_merge_is_exact_for_any_split(
        values in prop::collection::vec(0u64..1_000_000, 0..200),
        cut in 0usize..200,
    ) {
        let cut = cut.min(values.len());
        let mut left = one_shot(&values[..cut]);
        left.merge(&one_shot(&values[cut..]));
        prop_assert_eq!(left, one_shot(&values));
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in prop::collection::vec(0u64..100_000, 0..60),
        ys in prop::collection::vec(0u64..100_000, 0..60),
        zs in prop::collection::vec(0u64..100_000, 0..60),
    ) {
        let (hx, hy, hz) = (one_shot(&xs), one_shot(&ys), one_shot(&zs));
        // (x ∪ y) ∪ z == x ∪ (y ∪ z)
        let mut left = hx.clone();
        left.merge(&hy);
        left.merge(&hz);
        let mut right_tail = hy.clone();
        right_tail.merge(&hz);
        let mut right = hx.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        // x ∪ y == y ∪ x
        let mut xy = hx.clone();
        xy.merge(&hy);
        let mut yx = hy.clone();
        yx.merge(&hx);
        prop_assert_eq!(xy, yx);
    }

    /// Round-robin sharding over any worker count — the shape in which the
    /// parallel engine's per-worker observations reach the summary — merges to
    /// the one-shot histogram exactly.
    #[test]
    fn worker_sharded_recording_equals_one_shot(
        values in prop::collection::vec(0u64..1_000_000, 0..150),
        workers in 1usize..9,
    ) {
        let mut shards = vec![Histogram::new(); workers];
        for (i, &v) in values.iter().enumerate() {
            shards[i % workers].record(v);
        }
        let mut merged = Histogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(merged, one_shot(&values));
    }

    /// Percentiles answered from the merged histogram are the percentiles of
    /// the union: they always land inside the observed range and never below
    /// the bucket a lower quantile lands in.
    #[test]
    fn percentiles_are_monotone_and_within_range(
        values in prop::collection::vec(0u64..1_000_000, 1..150),
    ) {
        let h = one_shot(&values);
        let (lo, hi) = (*values.iter().min().unwrap(), *values.iter().max().unwrap());
        let mut last = 0u64;
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let p = h.percentile(q);
            prop_assert!(p >= lo && p <= hi, "p{q} = {} outside [{lo}, {hi}]", p);
            prop_assert!(p >= last, "percentiles must be monotone in q");
            last = p;
        }
    }
}

//! SIMD equivalence: the batched MBR filter is an *exact* pre-filter — every
//! backend (AVX2/SSE2/NEON where supported, plus the scalar-unrolled fallback)
//! must produce **bit-identical pairs, emission order and counters** on every
//! engine at every worker width. The suite also pins the per-node adaptive
//! strategy layer: a planner-derived run on a clustered workload must actually
//! exercise more than one local-join kind, and adaptivity must never change
//! the pairs.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, PoisonError};
use touch::core::simd::{self, Backend};
use touch::{
    collect_join, CollectingSink, Dataset, ExecTrace, JoinOrder, JoinQuery, OneShotStreaming,
    ParallelConfig, ParallelTouchJoin, SpatialJoinAlgorithm, StreamingConfig,
    SyntheticDistribution, SyntheticSpec, TouchConfig, TouchJoin, TraceEvent,
};

/// `simd::force_backend` is process-global state; every test that forces a
/// backend holds this lock for its whole run and restores runtime detection on
/// drop, so the tests in this binary cannot race each other's overrides.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

struct Forced(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Forced {
    fn new(backend: Backend) -> Self {
        let guard = FORCE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(simd::force_backend(Some(backend)), "{} unsupported here", backend.name());
        Forced(guard)
    }
}

impl Drop for Forced {
    fn drop(&mut self) {
        simd::force_backend(None);
    }
}

fn uniform(count: usize, seed: u64, side: f64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 100.0, max_object_side: side },
    }
    .generate(seed)
}

fn clustered(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Clustered { clusters: 5, std_dev: 2.0 },
        space: touch::datagen::SpaceConfig { size: 100.0, max_object_side: 2.5 },
    }
    .generate(seed)
}

fn cfg() -> TouchConfig {
    TouchConfig { partitions: 24, join_order: JoinOrder::TreeOnA, ..TouchConfig::default() }
}

/// The three TOUCH engines at a given worker budget, pinned to one config so
/// every run performs the same plan.
fn engines(threads: usize) -> Vec<(&'static str, Box<dyn SpatialJoinAlgorithm>)> {
    vec![
        ("touch", Box::new(TouchJoin::new(cfg())) as Box<dyn SpatialJoinAlgorithm>),
        (
            "parallel",
            Box::new(ParallelTouchJoin::new(ParallelConfig {
                threads,
                chunk_size: 64,
                sort_threshold: 128,
                touch: cfg(),
            })),
        ),
        (
            "streaming",
            Box::new(OneShotStreaming::new(StreamingConfig {
                touch: cfg(),
                threads,
                chunk_size: 64,
                sort_threshold: 128,
            })),
        ),
    ]
}

/// The tentpole obligation: every supported backend vs. the forced
/// scalar-unrolled fallback — three engines × 1/2/4/8 threads, pairs AND
/// counters (including the batch counters) bit-identical. The sequential
/// engine is additionally compared in raw emission order.
#[test]
fn all_backends_are_bit_identical_on_every_engine_and_thread_count() {
    let a = uniform(700, 51, 3.0);
    let b = uniform(900, 52, 1.5);

    // Reference: the scalar fallback, which shares the exact `Aabb::intersects`
    // predicate with the per-survivor confirmation pass.
    let mut reference = Vec::new();
    {
        let _forced = Forced::new(Backend::Scalar);
        for threads in [1, 2, 4, 8] {
            for (name, algo) in engines(threads) {
                let mut sink = CollectingSink::new();
                let report =
                    JoinQuery::new(&a, &b).within_distance(1.0).engine(&algo).run(&mut sink);
                assert!(report.counters.batch_lanes > 0, "{name}: filter never ran");
                assert_eq!(
                    report.counters.batch_lanes, report.counters.comparisons,
                    "{name}: every candidate passes through the batch filter"
                );
                reference.push((name, threads, sink.pairs().to_vec(), report.counters));
            }
        }
    }

    for backend in Backend::ALL {
        if !backend.is_supported() || backend == Backend::Scalar {
            continue;
        }
        let _forced = Forced::new(backend);
        let mut expected = reference.iter();
        for threads in [1, 2, 4, 8] {
            for (name, algo) in engines(threads) {
                let mut sink = CollectingSink::new();
                let report =
                    JoinQuery::new(&a, &b).within_distance(1.0).engine(&algo).run(&mut sink);
                let (_, _, ref_pairs, ref_counters) =
                    expected.next().unwrap_or_else(|| unreachable!("reference exhausted"));
                let label = format!("{}({threads}) on {}", name, backend.name());
                if name == "touch" {
                    // Single-threaded: raw emission order must match too.
                    assert_eq!(sink.pairs(), &ref_pairs[..], "{label}: emission order diverged");
                } else {
                    let mut got = sink.pairs().to_vec();
                    let mut want = ref_pairs.clone();
                    got.sort_unstable();
                    want.sort_unstable();
                    assert_eq!(got, want, "{label}: pairs diverged");
                }
                assert_eq!(report.counters, *ref_counters, "{label}: counters diverged");
            }
        }
    }
}

/// A planner-driven run on the clustered workload exercises the per-node
/// adaptive layer: at least two distinct local-join kinds fire (the NodeJoin
/// trace spans are labelled from the same `effective_kind` the join executes),
/// and the adaptive pairs equal a fixed single-cutoff run's.
#[test]
fn adaptive_planner_mixes_strategies_on_the_clustered_workload() {
    // Tight clusters make leaves small (low expected probe work → all-pairs)
    // while the upper nodes stay wide and dense (→ grid); the uniform probe
    // side reaches both, so a planned run exercises the adaptive split.
    let a = clustered(1200, 61);
    let b = uniform(1600, 62, 1.5);

    // Fixed global-cutoff reference (adapt: None, historical behaviour).
    let (expected_pairs, _) = collect_join(&TouchJoin::new(cfg()), &a, &b);

    // Bare query → the statistics-driven planner, which derives AdaptiveParams
    // from the probe side's density.
    let trace = ExecTrace::new();
    let mut sink = CollectingSink::new();
    let _ = JoinQuery::new(&a, &b).trace(&trace).run(&mut sink);
    assert_eq!(sink.sorted_pairs(), expected_pairs, "adaptivity changed the result");

    let mut kinds: Vec<&'static str> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::NodeJoin { strategy, .. } => Some(*strategy),
            _ => None,
        })
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert!(
        kinds.len() >= 2,
        "expected the per-node adaptive layer to pick at least two strategies, got {kinds:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random datasets: the detected backend and the forced scalar fallback
    /// agree on pairs, emission order and every counter through the sequential
    /// engine (which exercises all three kernels via the planner's grid kind
    /// plus the small-node fallbacks).
    #[test]
    fn random_datasets_agree_between_detected_and_scalar(
        seed in 0u64..500,
        count_a in 80usize..260,
        count_b in 80usize..260,
        eps in 0.0..2.0f64,
    ) {
        let a = uniform(count_a, seed.wrapping_add(1), 3.0);
        let b = uniform(count_b, seed.wrapping_add(2), 1.5);
        let run = || {
            let mut sink = CollectingSink::new();
            let report = JoinQuery::new(&a, &b)
                .within_distance(eps)
                .engine(TouchJoin::new(cfg()))
                .run(&mut sink);
            (sink.pairs().to_vec(), report.counters)
        };
        let (scalar_pairs, scalar_counters) = {
            let _forced = Forced::new(Backend::Scalar);
            run()
        };
        let (auto_pairs, auto_counters) = {
            let _lock = FORCE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
            run()
        };
        prop_assert_eq!(scalar_pairs, auto_pairs);
        prop_assert_eq!(scalar_counters, auto_counters);
    }
}

//! Self-join equivalence: [`JoinQuery::self_join`] must report exactly the
//! unordered pairs of the brute-force `A ⋈ A` with the `i < j` filter — pairs
//! **and** counters — on every engine and at every thread count. The in-kernel
//! index-order filter (TOUCH engines) and the [`SelfPairSink`] adapter
//! (baselines) are two implementations of one contract; this suite pins them to
//! each other and to the ground truth.

use proptest::prelude::*;
use touch::{
    Baseline, CollectingSink, Dataset, Engine, FirstKSink, JoinQuery, ObjectId, ParallelConfig,
    Predicate, RunReport, StreamingConfig, SyntheticDistribution, SyntheticSpec, World,
};

fn synthetic(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Clustered { clusters: 6, std_dev: 18.0 },
        space: touch::datagen::SpaceConfig { size: 100.0, max_object_side: 3.0 },
    }
    .generate(seed)
}

/// Ground truth: every unordered pair `(i, j)`, `i < j`, whose boxes are within
/// `eps` of each other (ε-extension of the first side, like the engines).
fn brute_force(a: &Dataset, eps: f64) -> Vec<(ObjectId, ObjectId)> {
    let ext = a.extended(eps);
    let mut pairs = Vec::new();
    for x in ext.objects() {
        for y in a.objects() {
            if x.id < y.id && x.mbr.intersects(&y.mbr) {
                pairs.push((x.id, y.id));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

fn run_self(a: &Dataset, eps: f64, engine: Engine) -> (Vec<(ObjectId, ObjectId)>, RunReport) {
    let mut sink = CollectingSink::new();
    let mut query = JoinQuery::self_join(a).engine(engine);
    if eps > 0.0 {
        query = query.predicate(Predicate::WithinDistance(eps));
    }
    let report = query.run(&mut sink);
    (sink.sorted_pairs(), report)
}

/// The three engines × thread counts 1/2/4/8: identical pairs, and identical
/// counters wherever the determinism contract promises them (sequential vs
/// parallel at every width; streaming at every width against itself).
#[test]
fn every_engine_and_thread_count_matches_brute_force() {
    let a = synthetic(600, 42);
    let eps = 2.5;
    let expected = brute_force(&a, eps);
    assert!(!expected.is_empty());

    let (seq_pairs, seq_report) = run_self(&a, eps, Engine::touch());
    assert_eq!(seq_pairs, expected, "sequential TOUCH");
    assert_eq!(seq_report.result_pairs() as usize, expected.len());

    for threads in [1, 2, 4, 8] {
        let (pairs, report) =
            run_self(&a, eps, Engine::Parallel(ParallelConfig::with_threads(threads)));
        assert_eq!(pairs, expected, "parallel, {threads} threads");
        assert_eq!(report.counters, seq_report.counters, "parallel counters, {threads} threads");

        let config = StreamingConfig { threads, ..Default::default() };
        let (pairs, report) = run_self(&a, eps, Engine::Streaming(config));
        assert_eq!(pairs, expected, "streaming, {threads} threads");
        assert_eq!(
            report.result_pairs() as usize,
            expected.len(),
            "streaming results counter, {threads} threads"
        );
    }

    // The automatic planner must dispatch to one of the above.
    let (pairs, report) = run_self(&a, eps, Engine::Auto);
    assert_eq!(pairs, expected, "auto");
    assert_eq!(report.result_pairs() as usize, expected.len());
}

/// Baselines have no in-kernel filter; the default trait path wraps their sink
/// in the `SelfPairSink` adapter. Same pairs, and the results counter reflects
/// the *delivered* (post-filter) pairs.
#[test]
fn baseline_default_path_filters_through_the_adapter() {
    let a = synthetic(250, 7);
    let expected = brute_force(&a, 0.0);
    assert!(!expected.is_empty());
    for baseline in [Baseline::NestedLoop, Baseline::RTree, Baseline::Pbsm100] {
        let (pairs, report) = run_self(&a, 0.0, Engine::Baseline(baseline));
        assert_eq!(pairs, expected, "{baseline:?}");
        assert_eq!(report.result_pairs() as usize, expected.len(), "{baseline:?}");
    }
}

/// A pair budget on a self-join stops after exactly `k` *filtered* pairs —
/// budgets are post-filter, so the mirrored orientations an engine skips do not
/// eat into them.
#[test]
fn pair_budgets_count_filtered_pairs_only() {
    let a = synthetic(400, 3);
    let eps = 6.0;
    let expected = brute_force(&a, eps);
    assert!(expected.len() > 16);
    for engine in [Engine::touch(), Engine::Parallel(ParallelConfig::with_threads(4))] {
        let mut sink = FirstKSink::new(16);
        let _ = JoinQuery::self_join(&a)
            .predicate(Predicate::WithinDistance(eps))
            .engine(engine)
            .run(&mut sink);
        assert_eq!(sink.count(), 16);
        for pair in sink.pairs() {
            assert!(expected.binary_search(pair).is_ok(), "invalid pair {pair:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random moving-object worlds of random sizes: the dataset a tick derives
    /// from the world self-joins identically on all three engines, and equal to
    /// brute force.
    #[test]
    fn random_worlds_self_join_identically(
        count in 20usize..150,
        seed in 0u64..500,
        eps in 0.0f64..60.0,
    ) {
        let world = World::random(count, seed);
        let mut a = Dataset::new();
        world.fill_dataset(&mut a);
        let expected = brute_force(&a, eps);

        let (seq, seq_report) = run_self(&a, eps, Engine::touch());
        prop_assert_eq!(&seq, &expected);
        let (par, par_report) =
            run_self(&a, eps, Engine::Parallel(ParallelConfig::with_threads(4)));
        prop_assert_eq!(&par, &expected);
        prop_assert_eq!(par_report.counters, seq_report.counters);
        let (stream, _) =
            run_self(&a, eps, Engine::Streaming(StreamingConfig { threads: 2, ..Default::default() }));
        prop_assert_eq!(&stream, &expected);
    }
}

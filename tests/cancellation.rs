//! Cooperative cancellation and deadlines: an untriggered [`CancelToken`]
//! changes nothing — pairs AND counters bit-identical to an un-cancellable
//! run, for every engine at every thread count — while a tripped one ends the
//! run in an orderly way with a *partial* report whose pairs are a subset of
//! the full result and whose counters describe exactly the work done. The
//! pre-trip vs. mid-trip semantics of the stateful engines (streaming epochs,
//! serve queries and publishes, simulation ticks) are pinned here too.

use proptest::prelude::*;
use std::collections::HashSet;
use std::time::{Duration, Instant};
use touch::{
    Aabb, CancelToken, CollectingSink, Completion, Dataset, ExecControl, FaultPlan, FirstKSink,
    JoinError, JoinQuery, JoinServer, ObjectId, OneShotStreaming, PairSink, ParallelTouchJoin,
    Point3, Seam, ServeConfig, SpatialJoinAlgorithm, StreamingConfig, StreamingTouchJoin,
    SyntheticDistribution, SyntheticSpec, TickConfig, TickEngine, TouchConfig, TouchJoin, World,
};

const EPS: f64 = 1.5;

fn synthetic(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 60.0, max_object_side: 2.0 },
    }
    .generate(seed)
}

/// The three TOUCH engines at a given worker budget.
fn engines(threads: usize) -> Vec<(&'static str, Box<dyn SpatialJoinAlgorithm>)> {
    vec![
        ("touch", Box::new(TouchJoin::default()) as Box<dyn SpatialJoinAlgorithm>),
        ("parallel", Box::new(ParallelTouchJoin::with_threads(threads))),
        (
            "streaming",
            Box::new(OneShotStreaming::new(StreamingConfig {
                threads,
                ..StreamingConfig::default()
            })),
        ),
    ]
}

fn serve_cfg() -> ServeConfig {
    ServeConfig { touch: TouchConfig::default(), delta_limit: None, hazard_slots: 8 }
}

/// A denser workload for the serve tests: their queries are plain intersection
/// joins (no ε extension), so the 60-unit space would yield almost no pairs.
fn dense(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 20.0, max_object_side: 2.0 },
    }
    .generate(seed)
}

/// Collects pairs and trips `token` after `cancel_after` pushes, modelling a
/// consumer that decides mid-stream it has seen enough.
struct TripwireSink<'a> {
    pairs: Vec<(ObjectId, ObjectId)>,
    cancel_after: usize,
    token: &'a CancelToken,
}

impl<'a> TripwireSink<'a> {
    fn new(cancel_after: usize, token: &'a CancelToken) -> Self {
        TripwireSink { pairs: Vec::new(), cancel_after, token }
    }
}

impl PairSink for TripwireSink<'_> {
    fn push(&mut self, a: ObjectId, b: ObjectId) {
        self.pairs.push((a, b));
        if self.pairs.len() == self.cancel_after {
            self.token.cancel();
        }
    }
}

/// The headline equivalence: a live token — plain or with a generous deadline —
/// is invisible. Pairs and counters are bit-identical to the infallible run,
/// for every engine at 1/2/4/8 threads, and the report says `Complete`.
#[test]
fn untriggered_tokens_change_nothing_for_every_engine_and_thread_count() {
    let a = synthetic(600, 11);
    let b = synthetic(800, 12);
    for threads in [1, 2, 4, 8] {
        for (name, algo) in engines(threads) {
            let mut plain_sink = CollectingSink::new();
            let plain = JoinQuery::new(&a, &b)
                .within_distance(EPS)
                .engine(algo.as_ref())
                .run(&mut plain_sink);
            for token in [CancelToken::new(), CancelToken::with_deadline(Duration::from_secs(3600))]
            {
                let mut sink = CollectingSink::new();
                let report = JoinQuery::new(&a, &b)
                    .within_distance(EPS)
                    .engine(algo.as_ref())
                    .cancel(&token)
                    .try_run(&mut sink)
                    .expect("a live token is not an error");
                assert_eq!(report.completion, Completion::Complete, "{name}({threads})");
                assert_eq!(
                    sink.sorted_pairs(),
                    plain_sink.sorted_pairs(),
                    "{name}({threads}): pairs diverged"
                );
                assert_eq!(report.counters, plain.counters, "{name}({threads}): counters diverged");
            }
        }
    }
}

/// A token tripped before the run starts yields an empty report stamped with
/// the cause — not an error — and the sink stays empty but finished.
#[test]
fn pre_cancelled_queries_return_stamped_empty_reports() {
    let a = synthetic(300, 13);
    let b = synthetic(300, 14);
    for threads in [1, 4] {
        for (name, algo) in engines(threads) {
            let token = CancelToken::new();
            token.cancel();
            let mut sink = CollectingSink::new();
            let report = JoinQuery::new(&a, &b)
                .within_distance(EPS)
                .engine(algo.as_ref())
                .cancel(&token)
                .try_run(&mut sink)
                .expect("cancellation with a report to return is not an error");
            assert_eq!(report.completion, Completion::Cancelled, "{name}({threads})");
            assert_eq!(report.result_pairs(), 0, "{name}({threads})");
            assert!(sink.pairs().is_empty(), "{name}({threads})");
        }
    }
}

/// A token tripped mid-run (here: by the sink itself after the first pair)
/// stops the sequential engines early: the emitted pairs are a strict subset
/// of the full result and the partial counters match what was emitted.
#[test]
fn mid_run_cancellation_emits_a_consistent_subset() {
    let a = synthetic(700, 15);
    let b = synthetic(900, 16);
    let touch_engine = TouchJoin::default();
    let streaming =
        OneShotStreaming::new(StreamingConfig { threads: 1, ..StreamingConfig::default() });
    let engines: Vec<(&str, &dyn SpatialJoinAlgorithm)> =
        vec![("touch", &touch_engine), ("streaming", &streaming)];
    for (name, algo) in engines {
        let mut full = CollectingSink::new();
        let full_report = JoinQuery::new(&a, &b).within_distance(EPS).engine(algo).run(&mut full);
        let full_pairs: HashSet<(ObjectId, ObjectId)> = full.pairs().iter().copied().collect();
        assert!(full_pairs.len() > 8, "{name}: workload too sparse to test cancellation");

        let token = CancelToken::new();
        let mut sink = TripwireSink::new(1, &token);
        let report = JoinQuery::new(&a, &b)
            .within_distance(EPS)
            .engine(algo)
            .cancel(&token)
            .try_run(&mut sink)
            .expect("cancellation is not an error");
        assert_eq!(report.completion, Completion::Cancelled, "{name}");
        assert!(!sink.pairs.is_empty(), "{name}: the tripping pair itself was emitted");
        assert!(sink.pairs.len() < full_pairs.len(), "{name}: the run must have stopped early");
        assert!(
            sink.pairs.iter().all(|p| full_pairs.contains(p)),
            "{name}: emitted a pair the full join does not contain"
        );
        assert_eq!(
            report.result_pairs(),
            sink.pairs.len() as u64,
            "{name}: the partial counters must match the emitted pairs"
        );
        assert!(
            report.counters.comparisons <= full_report.counters.comparisons,
            "{name}: a cancelled run cannot have done more work than the full one"
        );
    }
}

/// Deadline budget + slack: a stalled node join (injected delay) blows a small
/// budget; the next cooperative poll trips `DeadlineExceeded` and the run winds
/// down promptly with a consistent partial result.
#[test]
fn deadlines_cut_runs_short_with_bounded_slack() {
    let a = synthetic(700, 17);
    let b = synthetic(900, 18);
    let mut full = CollectingSink::new();
    let _ = JoinQuery::new(&a, &b).within_distance(EPS).engine(TouchJoin::default()).run(&mut full);
    let full_pairs: HashSet<(ObjectId, ObjectId)> = full.pairs().iter().copied().collect();

    let plan = FaultPlan::seeded(17).delay_on(Seam::NodeJoin, None, 1, Duration::from_millis(200));
    let token = CancelToken::with_deadline(Duration::from_millis(50));
    let started = Instant::now();
    let mut sink = CollectingSink::new();
    let report = JoinQuery::new(&a, &b)
        .within_distance(EPS)
        .engine(TouchJoin::default())
        .trace(&plan)
        .cancel(&token)
        .try_run(&mut sink)
        .expect("an elapsed deadline is not an error");
    let elapsed = started.elapsed();
    assert_eq!(report.completion, Completion::DeadlineExceeded);
    assert!(sink.pairs().len() < full_pairs.len(), "the run must have been cut short");
    assert!(sink.pairs().iter().all(|p| full_pairs.contains(p)));
    assert_eq!(report.result_pairs(), sink.pairs().len() as u64);
    // Slack: after the trip the engine winds down cooperatively instead of
    // running to completion; generous bound so slow CI machines stay green.
    assert!(elapsed < Duration::from_secs(30), "wind-down took {elapsed:?}");
}

/// A deadline that elapsed before the run even starts stamps
/// `DeadlineExceeded` — the deadline-flavoured twin of the pre-cancel test.
#[test]
fn an_elapsed_deadline_stamps_deadline_exceeded() {
    let a = synthetic(200, 19);
    let b = synthetic(200, 20);
    let token = CancelToken::with_deadline(Duration::from_millis(0));
    std::thread::sleep(Duration::from_millis(2));
    let mut sink = CollectingSink::new();
    let report = JoinQuery::new(&a, &b)
        .within_distance(EPS)
        .engine(TouchJoin::default())
        .cancel(&token)
        .try_run(&mut sink)
        .expect("a deadline with a report to return is not an error");
    assert_eq!(report.completion, Completion::DeadlineExceeded);
    assert_eq!(report.result_pairs(), 0);
    assert!(sink.pairs().is_empty());
}

/// Sink-driven early termination and token-driven cancellation compose: a
/// `FirstKSink` stopping the engine is a *complete* run (the sink got all it
/// asked for), while a pre-tripped token wins over the sink and emits nothing.
#[test]
fn first_k_composes_with_cancellation() {
    let a = synthetic(500, 21);
    let b = synthetic(600, 22);

    let token = CancelToken::new();
    let mut sink = FirstKSink::new(3);
    let report = JoinQuery::new(&a, &b)
        .within_distance(EPS)
        .engine(TouchJoin::default())
        .cancel(&token)
        .try_run(&mut sink)
        .expect("first-k with a live token");
    assert_eq!(sink.count(), 3);
    assert_eq!(report.result_pairs(), 3);
    assert_eq!(
        report.completion,
        Completion::Complete,
        "a sink-driven early stop is a complete run, not a cancellation"
    );

    let token = CancelToken::new();
    token.cancel();
    let mut sink = FirstKSink::new(3);
    let report = JoinQuery::new(&a, &b)
        .within_distance(EPS)
        .engine(TouchJoin::default())
        .cancel(&token)
        .try_run(&mut sink)
        .expect("pre-cancelled first-k");
    assert_eq!(sink.count(), 0, "a pre-tripped token wins over the sink");
    assert_eq!(report.completion, Completion::Cancelled);
}

/// Streaming pre-trip semantics: a token tripped before the epoch starts
/// leaves the engine completely untouched — the epoch is not counted, nothing
/// merges — so retrying the same batch is indistinguishable from a first push.
#[test]
fn streaming_pre_trip_leaves_the_engine_untouched_and_retryable() {
    let a = synthetic(400, 23);
    let b = synthetic(500, 24);
    let mut reference = StreamingTouchJoin::build_extended(&a, EPS, StreamingConfig::default());
    let mut ref_sink = CollectingSink::new();
    let _ = reference.push_batch(b.objects(), &mut ref_sink);

    let mut engine = StreamingTouchJoin::build_extended(&a, EPS, StreamingConfig::default());
    let token = CancelToken::new();
    token.cancel();
    let mut sink = CollectingSink::new();
    let report = engine
        .try_push_batch(b.objects(), &mut sink, ExecControl::with_cancel(&token))
        .expect("a pre-tripped epoch is not an error");
    assert_eq!(report.completion, Completion::Cancelled);
    assert_eq!(engine.epochs(), 0, "a pre-trip epoch is not counted");
    assert!(sink.pairs().is_empty());

    let mut retry = CollectingSink::new();
    let report = engine
        .try_push_batch(b.objects(), &mut retry, ExecControl::infallible())
        .expect("clean retry");
    assert_eq!(report.completion, Completion::Complete);
    assert_eq!(retry.sorted_pairs(), ref_sink.sorted_pairs(), "retry must equal a first push");
    assert_eq!(engine.cumulative_report().counters, reference.cumulative_report().counters);
    assert_eq!(engine.epochs(), 1);
}

/// Streaming mid-trip semantics: the cancelled epoch *is* counted — its pairs
/// reached the sink and its counters describe real work — and the cumulative
/// record stays an honest account of the partial epoch.
#[test]
fn streaming_mid_trip_counts_the_partial_epoch() {
    let a = synthetic(400, 25);
    let b = synthetic(500, 26);
    let mut reference = StreamingTouchJoin::build_extended(&a, EPS, StreamingConfig::default());
    let mut ref_sink = CollectingSink::new();
    let _ = reference.push_batch(b.objects(), &mut ref_sink);
    let full_pairs: HashSet<(ObjectId, ObjectId)> = ref_sink.pairs().iter().copied().collect();
    assert!(full_pairs.len() > 8, "workload too sparse to test mid-epoch cancellation");

    let mut engine = StreamingTouchJoin::build_extended(&a, EPS, StreamingConfig::default());
    let token = CancelToken::new();
    let mut sink = TripwireSink::new(1, &token);
    let report = engine
        .try_push_batch(b.objects(), &mut sink, ExecControl::with_cancel(&token))
        .expect("a mid-epoch trip is not an error");
    assert_eq!(report.completion, Completion::Cancelled);
    assert_eq!(engine.epochs(), 1, "a mid-trip epoch is counted");
    assert!(!sink.pairs.is_empty());
    assert!(sink.pairs.len() < full_pairs.len(), "the epoch must have stopped early");
    assert!(sink.pairs.iter().all(|p| full_pairs.contains(p)));
    assert_eq!(
        engine.cumulative_report().counters.results,
        sink.pairs.len() as u64,
        "the cumulative record covers exactly the partial epoch"
    );
}

/// The serving layer: queries stamp partial reports like every other engine,
/// while a publish — which has no meaningful partial result — refuses with an
/// error and keeps the buffered delta intact for a later retry.
#[test]
fn serve_queries_and_publishes_honour_tokens() {
    let a = dense(400, 27);
    let b = dense(300, 28);
    let server = JoinServer::new(&a, serve_cfg());
    let mut reader = server.reader();
    let batch = b.objects();

    let mut clean = CollectingSink::new();
    let clean_report = reader.query(batch, &mut clean);
    let full_pairs: HashSet<(ObjectId, ObjectId)> = clean.pairs().iter().copied().collect();
    assert!(full_pairs.len() > 4, "workload too sparse");

    // Pre-cancelled query: stamped empty report against the same generation.
    let token = CancelToken::new();
    token.cancel();
    let mut sink = CollectingSink::new();
    let report = reader
        .try_query(batch, &mut sink, ExecControl::with_cancel(&token))
        .expect("a pre-cancelled query is not an error");
    assert_eq!(report.completion, Completion::Cancelled);
    assert!(sink.pairs().is_empty());
    assert_eq!(report.generation, clean_report.generation);

    // Mid-query trip: consistent subset.
    let token = CancelToken::new();
    let mut tripwire = TripwireSink::new(1, &token);
    let report = reader
        .try_query(batch, &mut tripwire, ExecControl::with_cancel(&token))
        .expect("a mid-query trip is not an error");
    assert_eq!(report.completion, Completion::Cancelled);
    assert!(!tripwire.pairs.is_empty());
    assert!(tripwire.pairs.len() < full_pairs.len());
    assert!(tripwire.pairs.iter().all(|p| full_pairs.contains(p)));
    assert_eq!(report.result_pairs(), tripwire.pairs.len() as u64);

    // A cancelled publish has no partial result: hard refusal, delta intact.
    let _ = server.insert(Aabb::new(Point3::new(1.0, 2.0, 3.0), Point3::new(2.0, 3.0, 4.0)));
    assert_eq!(server.pending_delta(), 1);
    let token = CancelToken::new();
    token.cancel();
    let err = server
        .try_publish(ExecControl::with_cancel(&token))
        .expect_err("a publish has nothing partial to return");
    assert_eq!(err, JoinError::Cancelled);
    assert_eq!(server.pending_delta(), 1, "the buffered delta survives the refusal");
    assert_eq!(Some(server.generation()), clean_report.generation);

    // The retry commits and readers move to the new generation.
    let version = server.try_publish(ExecControl::infallible()).expect("retry publishes");
    assert_eq!(Some(version), clean_report.generation.map(|g| g + 1));
    assert_eq!(server.snapshot().live(), a.len() + 1);
}

/// A simulation tick is all-or-nothing: a pre-trip refusal is an error that
/// leaves the engine *bit-identically* pre-tick — the next tick replays what an
/// un-refused engine computes — and a dead deadline refuses the same way.
#[test]
fn pre_trip_ticks_leave_the_world_untouched() {
    let config = TickConfig::default().with_epsilon(30.0);
    let mut clean = TickEngine::new(World::random(300, 99), config);
    let clean_record = clean.tick();

    let mut engine = TickEngine::new(World::random(300, 99), config);
    let token = CancelToken::new();
    token.cancel();
    let err = engine
        .try_tick(ExecControl::with_cancel(&token))
        .expect_err("a tick has nothing partial to return");
    assert_eq!(err, JoinError::Cancelled);

    let record = engine.try_tick(ExecControl::infallible()).expect("clean tick after refusal");
    assert_eq!(record.tick, 1, "the refused tick must not have advanced the counter");
    assert_eq!(record.pairs, clean_record.pairs);
    assert_eq!(engine.pairs(), clean.pairs(), "the refused engine replays the clean run");
    assert_eq!(engine.world(), clean.world());

    let token = CancelToken::with_deadline(Duration::from_millis(0));
    std::thread::sleep(Duration::from_millis(2));
    let err = engine
        .try_tick(ExecControl::with_cancel(&token))
        .expect_err("an elapsed deadline refuses the tick");
    assert_eq!(err, JoinError::DeadlineExceeded);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Wherever the cancel point lands, the partial result is consistent:
    /// every emitted pair belongs to the full result, the counters match the
    /// emission count and never exceed the full run's work, and a run that
    /// reports `Complete` emitted everything.
    #[test]
    fn any_cancel_point_yields_a_consistent_subset(
        cancel_after in 1usize..200,
        seed in 0u64..4,
    ) {
        let a = synthetic(250, 31 + seed);
        let b = synthetic(250, 47 + seed);
        let mut full = CollectingSink::new();
        let full_report = JoinQuery::new(&a, &b)
            .within_distance(EPS)
            .engine(TouchJoin::default())
            .run(&mut full);
        let full_set: HashSet<(ObjectId, ObjectId)> = full.pairs().iter().copied().collect();

        let token = CancelToken::new();
        let mut sink = TripwireSink::new(cancel_after, &token);
        let report = JoinQuery::new(&a, &b)
            .within_distance(EPS)
            .engine(TouchJoin::default())
            .cancel(&token)
            .try_run(&mut sink)
            .expect("cancellation is not an error");

        prop_assert!(sink.pairs.iter().all(|p| full_set.contains(p)));
        prop_assert_eq!(report.result_pairs(), sink.pairs.len() as u64);
        prop_assert!(report.counters.comparisons <= full_report.counters.comparisons);
        match report.completion {
            Completion::Complete => {
                prop_assert_eq!(sink.pairs.len(), full_set.len());
                prop_assert_eq!(&report.counters, &full_report.counters);
            }
            Completion::Cancelled => {
                prop_assert!(sink.pairs.len() >= cancel_after, "the tripping pair was emitted");
            }
            Completion::DeadlineExceeded => prop_assert!(false, "no deadline was armed"),
        }
    }
}

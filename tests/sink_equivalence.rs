//! Cross-sink equivalence: every engine and baseline must deliver the **same pair
//! multiset** into every [`PairSink`] implementation — counting, collecting and
//! the zero-materialisation callback — and must honour the early-termination
//! protocol of [`FirstKSink`] inside its local-join loops (satisfying the
//! query-layer contract that a done sink stops the scan).

use proptest::prelude::*;
use touch::{
    Baseline, CallbackSink, CollectingSink, CountingSink, Dataset, Engine, FirstKSink, JoinQuery,
    NestedLoopJoin, ParallelConfig, PbsmJoin, SpatialJoinAlgorithm, StreamingConfig,
    SyntheticDistribution, SyntheticSpec, TouchConfig,
};

/// Every engine variant of the workspace: the three engines (sequential, parallel
/// at two widths, streaming one-shot) through the facade's `Engine` selector, and
/// every baseline. PBSM runs at resolutions scaled to the ~100-unit test space
/// (the paper's 500/100 cells per dimension would allocate a 1.25e8-cell grid for
/// a toy workload), like the other integration suites do.
fn all_engines() -> Vec<Box<dyn SpatialJoinAlgorithm>> {
    vec![
        Engine::Touch(TouchConfig::default()).build(),
        Engine::Parallel(ParallelConfig::with_threads(1)).build(),
        Engine::Parallel(ParallelConfig::with_threads(4)).build(),
        Engine::Streaming(StreamingConfig::default()).build(),
        Engine::Streaming(StreamingConfig::with_threads(3)).build(),
        Engine::Baseline(Baseline::NestedLoop).build(),
        Engine::Baseline(Baseline::PlaneSweep).build(),
        Box::new(PbsmJoin::with_label(50, "PBSM-fine")),
        Box::new(PbsmJoin::with_label(12, "PBSM-coarse")),
        Engine::Baseline(Baseline::S3).build(),
        Engine::Baseline(Baseline::IndexedNestedLoop).build(),
        Engine::Baseline(Baseline::RTree).build(),
        Engine::Baseline(Baseline::Octree).build(),
        Engine::Baseline(Baseline::SeededTree).build(),
    ]
}

fn synthetic(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 100.0, max_object_side: 2.0 },
    }
    .generate(seed)
}

/// A dense row of identical boxes: every (a, b) pair intersects, so a nested loop
/// would perform exactly |A|·|B| comparisons if never stopped.
fn all_intersecting(n: usize) -> Dataset {
    Dataset::from_mbrs(
        (0..n).map(|_| touch::Aabb::new(touch::Point3::ORIGIN, touch::Point3::splat(1.0))),
    )
}

#[test]
fn all_sinks_see_the_same_pairs_from_every_engine() {
    let a = synthetic(500, 1);
    let b = synthetic(800, 2);
    for eps in [0.0, 2.0] {
        let mut reference: Option<Vec<(u32, u32)>> = None;
        for engine in all_engines() {
            let engine = engine.as_ref();
            let name = engine.name();

            let mut collecting = CollectingSink::new();
            let collect_report =
                JoinQuery::new(&a, &b).within_distance(eps).engine(engine).run(&mut collecting);
            let collected = collecting.sorted_pairs();

            let mut streamed = Vec::new();
            let mut callback = CallbackSink::new(|x, y| streamed.push((x, y)));
            let callback_report =
                JoinQuery::new(&a, &b).within_distance(eps).engine(engine).run(&mut callback);
            let forwarded = callback.count();
            streamed.sort_unstable();

            let mut counting = CountingSink::new();
            let count_report =
                JoinQuery::new(&a, &b).within_distance(eps).engine(engine).run(&mut counting);

            assert_eq!(streamed, collected, "{name}: callback and collecting sinks diverged");
            assert_eq!(forwarded, collected.len() as u64, "{name}: callback count diverged");
            assert_eq!(counting.count(), collected.len() as u64, "{name}: counting diverged");
            for report in [&collect_report, &callback_report, &count_report] {
                assert_eq!(report.result_pairs(), collected.len() as u64, "{name}: report");
                assert_eq!(report.epsilon, eps, "{name}: epsilon must be on every report");
            }
            match &reference {
                None => reference = Some(collected),
                Some(expected) => {
                    assert_eq!(&collected, expected, "{name}: engines disagree (eps = {eps})")
                }
            }
        }
    }
}

#[test]
fn first_k_stops_the_nested_loop_before_the_full_scan() {
    // 200 × 300 identical boxes: every comparison is a hit. Without early
    // termination the nested loop performs exactly 60 000 comparisons.
    let a = all_intersecting(200);
    let b = all_intersecting(300);
    const K: usize = 5;
    let mut sink = FirstKSink::new(K);
    let report =
        JoinQuery::new(&a, &b).engine(Engine::Baseline(Baseline::NestedLoop)).run(&mut sink);
    assert_eq!(sink.count(), K as u64);
    assert_eq!(report.result_pairs(), K as u64);
    assert!(
        report.counters.comparisons < (a.len() * b.len()) as u64,
        "FirstKSink must stop the scan early: {} comparisons for k = {K}",
        report.counters.comparisons
    );
    // The sequential scan stops right at the k-th hit.
    assert_eq!(report.counters.comparisons, K as u64);
}

#[test]
fn first_k_yields_exactly_k_valid_pairs_from_every_engine() {
    let a = synthetic(400, 3);
    let b = synthetic(600, 4);
    // Ground truth for validity checks and the full result size.
    let mut full = CollectingSink::new();
    let _ = JoinQuery::new(&a, &b).within_distance(1.0).run(&mut full);
    let universe: std::collections::HashSet<(u32, u32)> = full.pairs().iter().copied().collect();
    assert!(universe.len() > 16, "workload must produce enough pairs for the test");

    for engine in all_engines() {
        let engine = engine.as_ref();
        let name = engine.name();
        for k in [0usize, 1, 7, 16] {
            let mut sink = FirstKSink::new(k);
            let report = JoinQuery::new(&a, &b).within_distance(1.0).engine(engine).run(&mut sink);
            let expected = k.min(universe.len());
            assert_eq!(sink.count(), expected as u64, "{name}: k = {k}");
            assert_eq!(report.result_pairs(), expected as u64, "{name}: k = {k} report");
            for pair in sink.pairs() {
                assert!(universe.contains(pair), "{name}: k = {k} produced bogus pair {pair:?}");
            }
        }
    }
}

#[test]
fn first_k_under_the_parallel_engine_shares_one_budget_across_workers() {
    let a = all_intersecting(300);
    let b = all_intersecting(300);
    const K: usize = 9;
    for threads in [2, 4, 8] {
        let mut sink = FirstKSink::new(K);
        let report = JoinQuery::new(&a, &b)
            .engine(Engine::Parallel(ParallelConfig::with_threads(threads)))
            .run(&mut sink);
        assert_eq!(sink.count(), K as u64, "threads = {threads}");
        assert_eq!(report.result_pairs(), K as u64, "threads = {threads}");
        assert!(
            report.counters.comparisons < (a.len() * b.len()) as u64,
            "threads = {threads}: the shared budget must stop the workers early"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On arbitrary workloads, the pair multiset delivered to a `CallbackSink` and
    /// to a `CollectingSink` is identical for every engine and baseline.
    #[test]
    fn callback_and_collecting_sinks_agree_on_arbitrary_workloads(
        seed_a in 0u64..1_000,
        seed_b in 0u64..1_000,
        eps in 0.0..4.0f64,
    ) {
        let a = synthetic(150, seed_a);
        let b = synthetic(220, seed_b.wrapping_add(7_777));
        for engine in all_engines() {
            let engine = engine.as_ref();
            let mut collecting = CollectingSink::new();
            let _ = JoinQuery::new(&a, &b).within_distance(eps).engine(engine).run(&mut collecting);
            let mut streamed = Vec::new();
            let mut callback = CallbackSink::new(|x, y| streamed.push((x, y)));
            let _ = JoinQuery::new(&a, &b).within_distance(eps).engine(engine).run(&mut callback);
            streamed.sort_unstable();
            prop_assert_eq!(
                streamed,
                collecting.sorted_pairs(),
                "{} diverged between sinks",
                engine.name()
            );
        }
    }
}

/// Regression: the indexed nested loop cannot abort an R-tree query mid-probe,
/// but it must never push into a done sink — `results` has to equal the pairs
/// the sink actually received even when a probe's hit list straddles the k
/// boundary (every A box hits here, so probe #1 alone would overshoot k = 1).
#[test]
fn indexed_nl_never_pushes_into_a_done_sink() {
    let a = all_intersecting(50);
    let b = all_intersecting(50);
    let mut sink = FirstKSink::new(1);
    let report =
        JoinQuery::new(&a, &b).engine(Engine::Baseline(Baseline::IndexedNestedLoop)).run(&mut sink);
    assert_eq!(sink.count(), 1);
    assert_eq!(report.result_pairs(), 1, "results must count delivered pairs, not found pairs");
}

/// A sink that stops via `is_done` but does NOT declare a `pair_limit`: the
/// parallel engine's shards run unbudgeted and the merge must stop delivering —
/// and the report must count only what was delivered.
#[derive(Default)]
struct DoneWithoutLimit {
    limit: usize,
    pairs: Vec<(u32, u32)>,
}

impl touch::PairSink for DoneWithoutLimit {
    fn push(&mut self, a: u32, b: u32) {
        if self.pairs.len() < self.limit {
            self.pairs.push((a, b));
        }
    }

    fn is_done(&self) -> bool {
        self.pairs.len() >= self.limit
    }
}

#[test]
fn parallel_merge_credits_only_delivered_pairs_for_unbudgeted_done_sinks() {
    let a = all_intersecting(40);
    let b = all_intersecting(40);
    for threads in [1, 4] {
        let mut sink = DoneWithoutLimit { limit: 5, pairs: Vec::new() };
        let report = JoinQuery::new(&a, &b)
            .engine(Engine::Parallel(ParallelConfig::with_threads(threads)))
            .run(&mut sink);
        assert_eq!(sink.pairs.len(), 5, "threads = {threads}");
        assert_eq!(
            report.result_pairs(),
            5,
            "threads = {threads}: results must match the pairs the sink accepted"
        );
    }
}

/// Direct-trait sanity check: the raw `SpatialJoinAlgorithm::join` entry (without
/// the query layer) also honours early termination.
#[test]
fn raw_trait_join_honours_first_k() {
    let a = all_intersecting(50);
    let b = all_intersecting(50);
    let mut sink = FirstKSink::new(3);
    let report = NestedLoopJoin::new().join(&a, &b, &mut sink);
    assert_eq!(sink.count(), 3);
    assert_eq!(report.counters.comparisons, 3);
}

/// One [`touch::LocalJoinScratch`] shared across every sink kind and an
/// early-terminating run in between: the tree-level join driven the way a
/// persistent application would drive it. Every sink must observe the same pair
/// stream no matter how dirty the scratch's buffers are from previous consumers,
/// and an aborted [`FirstKSink`] run must not leak state into the next one.
#[test]
fn every_sink_sees_the_same_pairs_through_a_shared_scratch() {
    let a = synthetic(600, 31);
    let b = synthetic(800, 32);
    let cfg = TouchConfig { partitions: 16, ..TouchConfig::default() };
    let mut tree = touch::TouchTree::build(a.objects(), cfg.partitions, cfg.fanout);
    let mut counters = touch::Counters::new();
    tree.assign(b.objects(), &mut counters);
    let params = cfg.local_join_params(cfg.min_local_cell_size(&a, &b));

    let mut scratch = touch::LocalJoinScratch::new();
    let run = |scratch: &mut touch::LocalJoinScratch, emit: &mut dyn FnMut(u32, u32) -> bool| {
        let mut counters = touch::Counters::new();
        tree.join_assigned(&params, scratch, &mut counters, &mut |x, y| emit(x, y));
        counters
    };

    // Collecting through the shared scratch is the reference.
    let mut collected = Vec::new();
    let reference_counters = run(&mut scratch, &mut |x, y| {
        collected.push((x, y));
        true
    });
    assert!(!collected.is_empty());

    // An early-terminated pass in between must deliver a prefix and leave the
    // scratch reusable.
    let mut first_two = Vec::new();
    run(&mut scratch, &mut |x, y| {
        first_two.push((x, y));
        first_two.len() < 2
    });
    assert_eq!(first_two, collected[..2].to_vec());

    // Counting and callback consumers over the same dirty scratch see the
    // identical stream and work.
    let mut count = 0u64;
    let counting_counters = run(&mut scratch, &mut |_, _| {
        count += 1;
        true
    });
    assert_eq!(count, collected.len() as u64);
    assert_eq!(counting_counters, reference_counters);

    let mut replayed = Vec::new();
    let callback_counters = run(&mut scratch, &mut |x, y| {
        replayed.push((x, y));
        true
    });
    assert_eq!(replayed, collected, "shared scratch changed the pair stream");
    assert_eq!(callback_counters, reference_counters);
}

//! Scratch/CSR equivalence: the cache-conscious join core — the CSR grid
//! directory, the SoA MBR caches and the reused [`LocalJoinScratch`] — must be
//! **observationally identical** to the seed implementation (per-node
//! `HashMap<cell, Vec<pos>>` directories, fresh plane-sweep clones): same pairs,
//! same *emission order*, same counters. The suite pins that equivalence three
//! ways:
//!
//! 1. against a test-local re-implementation of the seed's local joins,
//! 2. across all three engines at 1/2/4/8 worker threads,
//! 3. across streaming epoch splits (property-tested), with the engine's shared
//!    [`ScratchPool`] serving every epoch and stream.

use proptest::prelude::*;
use std::collections::HashMap;
use touch::core::{kernels, LocalJoinKind};
use touch::index::UniformGrid;
use touch::{
    collect_join, CollectingSink, Counters, Dataset, JoinOrder, JoinQuery, LocalJoinParams,
    LocalJoinScratch, ParallelConfig, ParallelTouchJoin, SpatialJoinAlgorithm, StreamingConfig,
    StreamingTouchJoin, SyntheticDistribution, SyntheticSpec, TouchConfig, TouchJoin, TouchTree,
};

/// Tree-side (A) workload: larger objects on average than [`probe`]'s, so the
/// streaming engine's tree-only minimum cell size equals the one-shot joins'
/// two-sided minimum and every engine performs the identical grid work (the same
/// arrangement the streaming equivalence suite uses).
fn tree_side(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 100.0, max_object_side: 3.0 },
    }
    .generate(seed)
}

/// Probe-side (B) workload: smaller objects than [`tree_side`]'s.
fn probe(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 100.0, max_object_side: 1.5 },
    }
    .generate(seed)
}

/// A clustered tree-side workload with the same large-object guarantee.
fn clustered_tree_side(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Clustered { clusters: 6, std_dev: 14.0 },
        space: touch::datagen::SpaceConfig { size: 100.0, max_object_side: 3.0 },
    }
    .generate(seed)
}

/// The seed implementation of one node's local join, re-implemented verbatim:
/// a fresh `HashMap<cell, Vec<pos>>` directory per grid node, fresh `to_vec()`
/// clones per plane-sweep node, identical counting conventions.
fn seed_local_join(
    tree: &TouchTree,
    index: usize,
    params: &LocalJoinParams,
    counters: &mut Counters,
    pairs: &mut Vec<(u32, u32)>,
) {
    let node = tree.node(index);
    let a_objs = tree.subtree_a_objects(node);
    let b_objs = node.assigned_b();
    let mut emit = |a: u32, b: u32| {
        pairs.push((a, b));
        true
    };
    match params.kind {
        LocalJoinKind::AllPairs => kernels::all_pairs(a_objs, b_objs, counters, &mut emit),
        LocalJoinKind::PlaneSweep => {
            let mut sa = a_objs.to_vec();
            let mut sb = b_objs.to_vec();
            kernels::plane_sweep(&mut sa, &mut sb, counters, &mut emit);
        }
        LocalJoinKind::Grid => {
            if a_objs.len() <= params.allpairs_max_a {
                kernels::all_pairs(a_objs, b_objs, counters, &mut emit);
                return;
            }
            let grid = UniformGrid::with_min_cell_size(
                node.mbr,
                params.cells_per_dim.max(1),
                params.min_cell_size,
            );
            let mut cells: HashMap<usize, Vec<u32>> = HashMap::new();
            for (pos, b) in b_objs.iter().enumerate() {
                let mut first = true;
                grid.for_each_overlapped_cell(&b.mbr, |cell| {
                    cells.entry(cell).or_default().push(pos as u32);
                    if first {
                        first = false;
                    } else {
                        counters.record_replica();
                    }
                });
            }
            for a in a_objs {
                grid.for_each_overlapped_cell(&a.mbr, |cell| {
                    let Some(candidates) = cells.get(&cell) else { return };
                    for &bpos in candidates {
                        let b = &b_objs[bpos as usize];
                        counters.record_comparison();
                        // The production path feeds candidate runs through the
                        // batched MBR filter in LANES-wide groups; the batch
                        // mask is exact, so accounting the batch counters per
                        // candidate here yields the identical totals.
                        counters.record_batch(1, u64::from(a.mbr.intersects(&b.mbr)));
                        if a.mbr.intersects(&b.mbr) {
                            let rp = a.mbr.intersection_reference_point(&b.mbr);
                            let rp_cell = grid.linear_index(grid.cell_of_point(&rp));
                            if rp_cell == cell {
                                emit(a.id, b.id);
                            } else {
                                counters.record_duplicate_suppressed();
                            }
                        }
                    }
                });
            }
        }
    }
}

/// Joins every assigned node with the seed-semantics local join, in the same node
/// order the scratch path uses.
fn seed_join(tree: &TouchTree, params: &LocalJoinParams) -> (Vec<(u32, u32)>, Counters) {
    let mut counters = Counters::new();
    let mut pairs = Vec::new();
    for idx in tree.nodes_with_assignments() {
        seed_local_join(tree, idx, params, &mut counters, &mut pairs);
    }
    (pairs, counters)
}

/// Joins through the production scratch path.
fn scratch_join(
    tree: &TouchTree,
    params: &LocalJoinParams,
    scratch: &mut LocalJoinScratch,
) -> (Vec<(u32, u32)>, Counters) {
    let mut counters = Counters::new();
    let mut pairs = Vec::new();
    tree.join_assigned(params, scratch, &mut counters, &mut |a, b| {
        pairs.push((a, b));
        true
    });
    (pairs, counters)
}

#[test]
fn csr_path_reproduces_the_seed_semantics_exactly() {
    let a = tree_side(900, 11);
    let b = probe(1100, 12);
    let mut tree = TouchTree::build(a.objects(), 24, 2);
    let mut assign_counters = Counters::new();
    tree.assign(b.objects(), &mut assign_counters);

    // A shared scratch across every strategy and parameterisation: reuse must be
    // invisible in pairs, order and counters alike.
    let mut scratch = LocalJoinScratch::new();
    for kind in [LocalJoinKind::Grid, LocalJoinKind::PlaneSweep, LocalJoinKind::AllPairs] {
        for (cells, min_cell, cutoff) in [(500, 5.0, 8), (20, 0.5, 8), (64, 2.0, 64)] {
            let params = LocalJoinParams {
                kind,
                cells_per_dim: cells,
                min_cell_size: min_cell,
                allpairs_max_a: cutoff,
                adapt: None,
            };
            let (seed_pairs, seed_counters) = seed_join(&tree, &params);
            let (pairs, counters) = scratch_join(&tree, &params, &mut scratch);
            assert!(!seed_pairs.is_empty(), "workload produced no pairs for {kind:?}");
            assert_eq!(
                pairs, seed_pairs,
                "{kind:?}/{cells}/{min_cell}/{cutoff}: pairs or emission order diverged from seed"
            );
            assert_eq!(
                counters, seed_counters,
                "{kind:?}/{cells}/{min_cell}/{cutoff}: counters diverged from seed"
            );
            assert!(scratch.directory_is_clean(), "scratch left dirty after {kind:?}");
        }
    }
}

/// The pinned configuration the cross-engine comparisons run with (tree on A so
/// the streaming engine's build-side decisions line up, as in the other suites).
fn cfg() -> TouchConfig {
    TouchConfig { partitions: 24, join_order: JoinOrder::TreeOnA, ..TouchConfig::default() }
}

#[test]
fn all_engines_and_thread_counts_agree_on_pairs_and_counters() {
    let a = clustered_tree_side(700, 3);
    let b = probe(900, 4);
    for eps in [0.0, 1.5] {
        let reference_algo = TouchJoin::new(cfg());
        let mut reference = CollectingSink::new();
        let reference_report =
            JoinQuery::new(&a, &b).within_distance(eps).engine(&reference_algo).run(&mut reference);

        let mut engines: Vec<Box<dyn SpatialJoinAlgorithm>> = Vec::new();
        for threads in [1, 2, 4, 8] {
            engines.push(Box::new(ParallelTouchJoin::new(ParallelConfig {
                threads,
                chunk_size: 64,
                sort_threshold: 128,
                touch: cfg(),
            })));
            engines.push(Box::new(touch::OneShotStreaming::new(StreamingConfig {
                touch: cfg(),
                threads,
                chunk_size: 64,
                sort_threshold: 128,
            })));
        }
        for engine in engines {
            let mut sink = CollectingSink::new();
            let report = JoinQuery::new(&a, &b).within_distance(eps).engine(&engine).run(&mut sink);
            assert_eq!(
                sink.sorted_pairs(),
                reference.sorted_pairs(),
                "{} eps={eps}: pairs diverged",
                engine.name()
            );
            assert_eq!(
                report.counters,
                reference_report.counters,
                "{} eps={eps}: counters diverged",
                engine.name()
            );
        }
    }
}

#[test]
fn streaming_scratch_pool_survives_epochs_and_streams() {
    let a = tree_side(800, 21);
    let b = probe(1000, 22);
    let (one_shot_pairs, one_shot) = collect_join(&TouchJoin::new(cfg()), &a, &b);

    for threads in [1, 2, 4, 8] {
        let streaming_cfg =
            StreamingConfig { touch: cfg(), threads, chunk_size: 64, sort_threshold: 128 };
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg);
        // Three consecutive streams over the same engine: the pooled scratches and
        // work list are reused across every epoch of every stream, and each stream
        // must be indistinguishable from the first (and from the one-shot join).
        for stream in 0..3 {
            for epochs in [4] {
                let mut sink = CollectingSink::new();
                let chunk = b.len().div_ceil(epochs).max(1);
                for batch in b.objects().chunks(chunk) {
                    let _ = engine.push_batch(batch, &mut sink);
                }
                assert_eq!(
                    sink.sorted_pairs(),
                    one_shot_pairs,
                    "threads={threads} stream={stream}: pairs diverged"
                );
                assert_eq!(
                    engine.cumulative_report().counters,
                    one_shot.counters,
                    "threads={threads} stream={stream}: counters diverged"
                );
                engine.reset();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any epoch split at any worker width reproduces the one-shot pairs and
    /// counters through the shared scratch pool.
    #[test]
    fn any_epoch_split_matches_the_one_shot_join(
        epochs in 1usize..9,
        threads in 1usize..5,
        seed in 0u64..400,
    ) {
        let a = tree_side(300, seed.wrapping_add(1));
        let b = probe(400, seed.wrapping_add(2));
        let (expected_pairs, expected) = collect_join(&TouchJoin::new(cfg()), &a, &b);

        let streaming_cfg =
            StreamingConfig { touch: cfg(), threads, chunk_size: 32, sort_threshold: 64 };
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg);
        let mut sink = CollectingSink::new();
        let chunk = b.len().div_ceil(epochs).max(1);
        for batch in b.objects().chunks(chunk) {
            let _ = engine.push_batch(batch, &mut sink);
        }
        prop_assert_eq!(sink.sorted_pairs(), expected_pairs);
        prop_assert_eq!(engine.cumulative_report().counters, expected.counters);
    }
}

//! Simulation determinism: an N-tick run is **bit-identical** — per-tick pair
//! lists and final world state — across thread counts, re-planning cadences,
//! and the kernel-mode vs. serve-backed integration styles. This is the
//! workspace determinism contract lifted to a moving world: if any engine or
//! width disagreed on a single tick's pairs, the simulations would diverge
//! physically from that tick on, so equality after N ticks is a much stronger
//! statement than one-shot equality.

use touch::{ObjectId, ServeTickLoop, TickConfig, TickEngine, World};

const ENTITIES: usize = 400;
const SEED: u64 = 20260808;
const TICKS: usize = 12;
const EPS: f64 = 30.0;

/// Runs a kernel-mode tick loop and returns each tick's sorted pair list.
fn kernel_run(config: TickConfig) -> (Vec<Vec<(ObjectId, ObjectId)>>, World) {
    let mut engine = TickEngine::new(World::random(ENTITIES, SEED), config);
    let pairs = (0..TICKS)
        .map(|_| {
            engine.tick();
            engine.pairs().to_vec()
        })
        .collect();
    (pairs, engine.world().clone())
}

#[test]
fn thread_count_never_changes_a_tick() {
    let config = TickConfig::default().with_epsilon(EPS);
    let (baseline, base_world) = kernel_run(config);
    assert!(baseline.iter().any(|t| !t.is_empty()), "degenerate run: no pairs in any tick");
    for threads in [2, 4, 8] {
        let (pairs, world) = kernel_run(config.with_threads(threads));
        assert_eq!(pairs, baseline, "{threads} threads");
        assert_eq!(world, base_world, "{threads} threads");
    }
}

#[test]
fn replanning_cadence_never_changes_a_tick() {
    let config = TickConfig::default().with_epsilon(EPS);
    let (baseline, _) = kernel_run(config);
    // Re-plan every tick and never re-plan: the plan may differ, the pairs must not.
    for drift in [0.0, f64::INFINITY] {
        let mut cfg = config;
        cfg.replan_drift = drift;
        let (pairs, _) = kernel_run(cfg);
        assert_eq!(pairs, baseline, "replan_drift = {drift}");
    }
}

#[test]
fn serve_backed_loop_replays_the_kernel_run() {
    let config = TickConfig::default().with_epsilon(EPS);
    let mut kernel = TickEngine::new(World::random(ENTITIES, SEED), config);
    let mut serve = ServeTickLoop::new(World::random(ENTITIES, SEED), config);
    let g0 = serve.generation();
    for tick in 0..TICKS {
        let kr = kernel.tick();
        let sr = serve.tick();
        assert_eq!(kernel.pairs(), serve.pairs(), "tick {tick}");
        assert_eq!(kr.pairs, sr.pairs, "tick {tick}");
    }
    assert_eq!(kernel.world(), serve.world());
    assert_eq!(serve.generation(), g0 + TICKS as u64, "one published generation per tick");
}

#[test]
fn counting_mode_replays_the_collected_totals() {
    let config = TickConfig::default().with_epsilon(EPS);
    let (baseline, _) = kernel_run(config);
    let mut counting =
        TickEngine::new(World::random(ENTITIES, SEED), config.counting_only().with_threads(4));
    for (tick, expected) in baseline.iter().enumerate() {
        let record = counting.tick();
        assert_eq!(record.pairs as usize, expected.len(), "tick {tick}");
    }
    assert_eq!(counting.summary().pairs, baseline.iter().map(|t| t.len() as u64).sum::<u64>());
}

//! Integration test of the distance-join semantics: the ε-extension translation used
//! by every algorithm must find exactly the pairs whose MBRs are within L∞ distance ε
//! (and therefore a superset of the pairs within Euclidean distance ε, which the
//! refinement phase confirms on exact geometry).

use touch::{
    Aabb, CollectingSink, CountingSink, Cylinder, Dataset, JoinQuery, NeuroscienceSpec, Point3,
    TouchJoin,
};

fn grid_dataset(side: usize, spacing: f64, box_side: f64) -> Dataset {
    let mut ds = Dataset::new();
    for x in 0..side {
        for y in 0..side {
            for z in 0..side {
                let min = Point3::new(x as f64 * spacing, y as f64 * spacing, z as f64 * spacing);
                ds.push_mbr(Aabb::new(min, min + Point3::splat(box_side)));
            }
        }
    }
    ds
}

#[test]
fn epsilon_thresholds_are_inclusive_and_monotone() {
    // Boxes on a lattice with 2-unit gaps: the set of matching pairs changes exactly
    // at eps = 0, 2, ... and the eps = 2 threshold is inclusive.
    let a = grid_dataset(4, 3.0, 1.0);
    let b = grid_dataset(4, 3.0, 1.0);
    let touch = TouchJoin::default();

    let count = |eps: f64| {
        JoinQuery::new(&a, &b)
            .within_distance(eps)
            .engine(&touch)
            .run(&mut CountingSink::new())
            .result_pairs()
    };

    let at_zero = count(0.0);
    assert_eq!(at_zero, a.len() as u64, "with eps 0 every box matches only its twin");
    let below_gap = count(1.9);
    assert_eq!(below_gap, at_zero, "below the 2-unit gap nothing new matches");
    let at_gap = count(2.0);
    assert!(at_gap > below_gap, "the gap distance itself is inclusive (<=)");
    let above_gap = count(2.1);
    assert!(above_gap >= at_gap);
    // Monotonicity over a sweep.
    let mut last = 0;
    for eps in [0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0] {
        let c = count(eps);
        assert!(c >= last, "result count must grow with eps");
        last = c;
    }
}

#[test]
fn exact_pair_set_on_a_known_configuration() {
    // Three A boxes on a line, B boxes placed at controlled distances.
    let a = Dataset::from_mbrs([
        Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
        Aabb::new(Point3::new(10.0, 0.0, 0.0), Point3::new(11.0, 1.0, 1.0)),
        Aabb::new(Point3::new(20.0, 0.0, 0.0), Point3::new(21.0, 1.0, 1.0)),
    ]);
    let b = Dataset::from_mbrs([
        // 2 units right of a0.
        Aabb::new(Point3::new(3.0, 0.0, 0.0), Point3::new(4.0, 1.0, 1.0)),
        // exactly 5 units above a1.
        Aabb::new(Point3::new(10.0, 6.0, 0.0), Point3::new(11.0, 7.0, 1.0)),
        // far away from everything.
        Aabb::new(Point3::new(100.0, 100.0, 100.0), Point3::new(101.0, 101.0, 101.0)),
    ]);
    let touch = TouchJoin::default();

    let pairs_at = |eps: f64| {
        let mut sink = CollectingSink::new();
        let _ = JoinQuery::new(&a, &b).within_distance(eps).engine(&touch).run(&mut sink);
        sink.sorted_pairs()
    };

    assert_eq!(pairs_at(1.0), vec![]);
    assert_eq!(pairs_at(2.0), vec![(0, 0)]);
    assert_eq!(pairs_at(5.0), vec![(0, 0), (1, 1)]);
    // At eps = 20 every A box reaches both nearby B boxes (the extension applies to
    // every axis), but never the far-away one.
    assert_eq!(pairs_at(20.0), vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
}

#[test]
fn filtering_never_loses_a_matching_pair() {
    // Dataset A confined to a corner, dataset B spread widely: many B objects are
    // filtered, but every pair the nested scan finds must still be reported.
    let a = grid_dataset(3, 2.0, 1.0); // occupies [0, 7]^3
    let mut b = grid_dataset(3, 2.0, 1.0);
    for i in 0..200 {
        let min = Point3::new(50.0 + (i % 20) as f64 * 4.0, 50.0 + (i / 20) as f64 * 4.0, 30.0);
        b.push_mbr(Aabb::new(min, min + Point3::splat(1.0)));
    }
    let eps = 1.5;
    let mut sink = CollectingSink::new();
    let report = JoinQuery::new(&a, &b).within_distance(eps).run(&mut sink);
    assert!(report.counters.filtered > 0, "the far-away B objects must be filtered");

    // Brute force over the eps-extended A (same translation the library applies).
    let mut expected = Vec::new();
    for oa in a.extended(eps).iter() {
        for ob in b.iter() {
            if oa.mbr.intersects(&ob.mbr) {
                expected.push((oa.id, ob.id));
            }
        }
    }
    expected.sort_unstable();
    assert_eq!(sink.sorted_pairs(), expected);
}

#[test]
fn refinement_on_cylinders_is_a_subset_of_the_filter_output() {
    // End-to-end touch detection on a small tissue model: every exact touch found by
    // scanning all cylinder pairs must also be present among the MBR-filter
    // candidates (conservativeness), and refinement only removes pairs.
    let spec = NeuroscienceSpec {
        axon_cylinders: 300,
        dendrite_cylinders: 600,
        volume_side: 40.0,
        ..NeuroscienceSpec::default()
    };
    let tissue = spec.generate(3);
    let eps = 2.0;

    let mut sink = CollectingSink::new();
    let _ = JoinQuery::new(&tissue.axons, &tissue.dendrites)
        .within_distance(eps)
        .engine(TouchJoin::default())
        .run(&mut sink);
    let candidates: std::collections::HashSet<(u32, u32)> = sink.pairs().iter().copied().collect();

    let mut exact_touches = 0usize;
    for (ia, axon) in tissue.axon_cylinders.iter().enumerate() {
        for (ib, dendrite) in tissue.dendrite_cylinders.iter().enumerate() {
            if axon.touches(dendrite, eps) {
                exact_touches += 1;
                assert!(
                    candidates.contains(&(ia as u32, ib as u32)),
                    "exact touch ({ia}, {ib}) missing from the filter output"
                );
            }
        }
    }
    assert!(exact_touches > 0, "the test tissue must contain real touches");
    assert!(
        candidates.len() >= exact_touches,
        "the MBR filter is conservative, never smaller than the exact result"
    );

    // Refinement via the public Cylinder API yields exactly the exact_touches count.
    let refined = candidates
        .iter()
        .filter(|(ia, ib)| {
            let axon: &Cylinder = &tissue.axon_cylinders[*ia as usize];
            axon.touches(&tissue.dendrite_cylinders[*ib as usize], eps)
        })
        .count();
    assert_eq!(refined, exact_touches);
}

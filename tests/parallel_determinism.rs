//! Determinism of the `touch-parallel` subsystem: for every thread count the
//! parallel join must report the **same sorted result set** — and, because its
//! parallel STR sort is bit-identical to the sequential one, the **same counters** —
//! as the sequential `TouchJoin`, on every dataset family. Repeated runs with the
//! same thread count must also agree with each other (no scheduling-dependent
//! output).

use touch::{
    collect_join, CollectingSink, Dataset, EpochSummary, JoinQuery, NeuroscienceSpec,
    ParallelConfig, ParallelTouchJoin, StreamingConfig, StreamingTouchJoin, SyntheticDistribution,
    SyntheticSpec, TouchConfig, TouchJoin,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn synthetic(count: usize, dist: SyntheticDistribution, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: dist,
        space: touch::datagen::SpaceConfig { size: 120.0, max_object_side: 1.5 },
    }
    .generate(seed)
}

/// A parallel configuration whose chunking actually splits test-sized workloads.
fn busy_config(threads: usize) -> ParallelConfig {
    ParallelConfig { threads, chunk_size: 64, sort_threshold: 128, touch: TouchConfig::default() }
}

fn assert_deterministic(a: &Dataset, b: &Dataset, eps: f64, context: &str) {
    let mut sink = CollectingSink::new();
    let sequential =
        JoinQuery::new(a, b).within_distance(eps).engine(TouchJoin::default()).run(&mut sink);
    let expected = sink.sorted_pairs();

    for threads in THREAD_COUNTS {
        let algo = ParallelTouchJoin::new(busy_config(threads));
        let mut sink = CollectingSink::new();
        let report = JoinQuery::new(a, b).within_distance(eps).engine(&algo).run(&mut sink);
        assert_eq!(
            sink.sorted_pairs(),
            expected,
            "{context}: threads = {threads} diverged from the sequential result set"
        );
        assert_eq!(
            report.counters, sequential.counters,
            "{context}: threads = {threads} diverged from the sequential counters"
        );
        assert_eq!(report.threads, threads);
    }
}

#[test]
fn parallel_equals_sequential_on_uniform_data() {
    let a = synthetic(900, SyntheticDistribution::Uniform, 1);
    let b = synthetic(1_400, SyntheticDistribution::Uniform, 2);
    assert_deterministic(&a, &b, 0.0, "uniform");
    assert_deterministic(&a, &b, 3.0, "uniform");
}

#[test]
fn parallel_equals_sequential_on_clustered_data() {
    let dist = SyntheticDistribution::Clustered { clusters: 12, std_dev: 8.0 };
    let a = synthetic(800, dist, 5);
    let b = synthetic(1_200, dist, 6);
    assert_deterministic(&a, &b, 2.0, "clustered");
}

#[test]
fn parallel_equals_sequential_on_neuroscience_data() {
    let spec = NeuroscienceSpec {
        axon_cylinders: 700,
        dendrite_cylinders: 1_400,
        volume_side: 60.0,
        ..NeuroscienceSpec::default()
    };
    let tissue = spec.generate(7);
    assert_deterministic(&tissue.axons, &tissue.dendrites, 2.0, "neuroscience");
}

#[test]
fn repeated_runs_with_the_same_thread_count_agree() {
    let a = synthetic(700, SyntheticDistribution::Uniform, 10);
    let b = synthetic(1_000, SyntheticDistribution::Uniform, 11);
    for threads in THREAD_COUNTS {
        let algo = ParallelTouchJoin::new(busy_config(threads));
        let (first_pairs, first_report) = collect_join(&algo, &a, &b);
        for _ in 0..2 {
            let (pairs, report) = collect_join(&algo, &a, &b);
            assert_eq!(pairs, first_pairs, "threads = {threads}: pairs changed across runs");
            assert_eq!(
                report.counters, first_report.counters,
                "threads = {threads}: counters changed across runs"
            );
        }
    }
}

/// Streams `b` through a fresh engine in `epochs` equal batches, returning the
/// per-epoch deterministic summaries and per-epoch sorted pair sets.
fn stream_epochs(
    a: &Dataset,
    b: &Dataset,
    epochs: usize,
    threads: usize,
) -> (Vec<EpochSummary>, Vec<Vec<(u32, u32)>>) {
    let config = StreamingConfig {
        threads,
        chunk_size: 64,
        sort_threshold: 128,
        ..StreamingConfig::default()
    };
    let mut engine = StreamingTouchJoin::build(a, config);
    let chunk = b.len().div_ceil(epochs).max(1);
    let mut summaries = Vec::new();
    let mut pair_sets = Vec::new();
    for batch in b.objects().chunks(chunk) {
        let mut sink = CollectingSink::new();
        summaries.push(engine.push_batch(batch, &mut sink).summary());
        pair_sets.push(sink.sorted_pairs());
    }
    (summaries, pair_sets)
}

#[test]
fn streaming_epochs_are_bit_identical_across_thread_counts() {
    let a = synthetic(800, SyntheticDistribution::Uniform, 30);
    let b = synthetic(1_200, SyntheticDistribution::Uniform, 31);
    const EPOCHS: usize = 6;
    let (baseline_summaries, baseline_pairs) = stream_epochs(&a, &b, EPOCHS, 1);
    assert_eq!(baseline_summaries.len(), EPOCHS);
    for threads in [1, 2, 4, 8] {
        let (summaries, pairs) = stream_epochs(&a, &b, EPOCHS, threads);
        assert_eq!(
            summaries, baseline_summaries,
            "threads = {threads}: per-epoch reports diverged from the sequential stream"
        );
        assert_eq!(
            pairs, baseline_pairs,
            "threads = {threads}: per-epoch result sets diverged from the sequential stream"
        );
    }
}

#[test]
fn repeated_streaming_runs_with_the_same_thread_count_agree() {
    let a = synthetic(600, SyntheticDistribution::Uniform, 40);
    let b = synthetic(900, SyntheticDistribution::Uniform, 41);
    for threads in THREAD_COUNTS {
        let first = stream_epochs(&a, &b, 4, threads);
        for _ in 0..2 {
            assert_eq!(
                stream_epochs(&a, &b, 4, threads),
                first,
                "threads = {threads}: streaming output changed across runs"
            );
        }
    }
}

#[test]
fn auto_thread_detection_is_equivalent_too() {
    let a = synthetic(600, SyntheticDistribution::Uniform, 20);
    let b = synthetic(900, SyntheticDistribution::Uniform, 21);
    let (expected, _) = collect_join(&TouchJoin::default(), &a, &b);
    let auto = ParallelTouchJoin::default(); // threads = 0: auto-detect
    let (pairs, report) = collect_join(&auto, &a, &b);
    assert_eq!(pairs, expected);
    assert!(report.threads >= 1);
}

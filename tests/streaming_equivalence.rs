//! Epoch equivalence of the `touch-streaming` engine: splitting dataset B into
//! **any** sequence of epochs and pushing them through a persistent tree must
//! reproduce the one-shot `TouchJoin` exactly — the same sorted pair set *and* the
//! same counters, for both the sequential and the parallel execution paths.
//!
//! The workloads are arbitrary (random box positions/sizes, random epoch
//! boundaries) with one deliberate constraint: A's objects are generated at least
//! as large as B's, so the one-shot join's grid-cell floor (which consults both
//! datasets) equals the streaming engine's (which can only consult the tree
//! dataset — B is unknown at build time). See `StreamingConfig` for the rationale.

use proptest::prelude::*;
use touch::{
    collect_join, Aabb, CollectingSink, Counters, Dataset, JoinOrder, Point3, StreamingConfig,
    StreamingTouchJoin, TouchConfig, TouchJoin,
};

/// Epoch counts the suite exercises: one-shot, small splits, and per-object-ish.
const EPOCH_COUNTS: [usize; 4] = [1, 2, 7, 64];

/// An arbitrary A-box: sides in [2, 6] units inside a ~100-unit space.
fn arb_a_box() -> impl Strategy<Value = Aabb> {
    (0.0..100.0f64, 0.0..100.0f64, 0.0..100.0f64, 2.0..6.0f64, 2.0..6.0f64, 2.0..6.0f64).prop_map(
        |(x, y, z, w, h, d)| {
            let min = Point3::new(x, y, z);
            Aabb::new(min, min + Point3::new(w, h, d))
        },
    )
}

/// An arbitrary B-box: sides in [0, 1.5] units — strictly smaller on average than
/// any A-box, keeping the min-cell computation identical in both engines.
fn arb_b_box() -> impl Strategy<Value = Aabb> {
    (0.0..100.0f64, 0.0..100.0f64, 0.0..100.0f64, 0.0..1.5f64, 0.0..1.5f64, 0.0..1.5f64).prop_map(
        |(x, y, z, w, h, d)| {
            let min = Point3::new(x, y, z);
            Aabb::new(min, min + Point3::new(w, h, d))
        },
    )
}

fn arb_a_dataset(max: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(arb_a_box(), 1..max).prop_map(Dataset::from_mbrs)
}

fn arb_b_dataset(max: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(arb_b_box(), 1..max).prop_map(Dataset::from_mbrs)
}

/// The shared algorithmic configuration: the one-shot comparison pins the tree to
/// dataset A, exactly what the streaming engine always does. Small partition count
/// so test-sized trees still have several levels.
fn touch_cfg() -> TouchConfig {
    TouchConfig { partitions: 16, join_order: JoinOrder::TreeOnA, ..TouchConfig::default() }
}

fn streaming_cfg(threads: usize) -> StreamingConfig {
    StreamingConfig { touch: touch_cfg(), threads, chunk_size: 16, sort_threshold: 32 }
}

/// Splits `b` into `epochs` contiguous batches with boundaries derived from `seed`
/// (random but reproducible cuts; empty batches allowed and expected).
fn random_epoch_bounds(len: usize, epochs: usize, seed: u64) -> Vec<usize> {
    let mut cuts: Vec<usize> = (1..epochs)
        .map(|i| {
            // SplitMix64 step per cut: arbitrary but deterministic boundaries.
            let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as usize % (len + 1)
        })
        .collect();
    cuts.push(0);
    cuts.push(len);
    cuts.sort_unstable();
    cuts
}

/// Streams `b` through a fresh engine in the given epoch layout and returns the
/// sorted pairs plus the merged counters.
fn stream(
    a: &Dataset,
    b: &Dataset,
    bounds: &[usize],
    threads: usize,
) -> (Vec<(u32, u32)>, Counters, usize) {
    let mut engine = StreamingTouchJoin::build(a, streaming_cfg(threads));
    let mut sink = CollectingSink::new();
    for window in bounds.windows(2) {
        let _ = engine.push_batch(&b.objects()[window[0]..window[1]], &mut sink);
    }
    let cumulative = engine.cumulative_report();
    (sink.sorted_pairs(), cumulative.counters, cumulative.epochs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_epoch_split_reproduces_the_one_shot_join(
        a in arb_a_dataset(80),
        b in arb_b_dataset(140),
        seed in 0u64..u64::MAX,
    ) {
        let (expected_pairs, expected) = collect_join(&TouchJoin::new(touch_cfg()), &a, &b);
        for epochs in EPOCH_COUNTS {
            let bounds = random_epoch_bounds(b.len(), epochs, seed);
            for threads in [1, 4] {
                let (pairs, counters, pushed) = stream(&a, &b, &bounds, threads);
                prop_assert_eq!(
                    &pairs, &expected_pairs,
                    "epochs = {}, threads = {}: pair set diverged", epochs, threads
                );
                prop_assert_eq!(
                    counters, expected.counters,
                    "epochs = {}, threads = {}: counters diverged", epochs, threads
                );
                prop_assert_eq!(pushed, epochs);
            }
        }
    }

    #[test]
    fn sequential_and_parallel_streams_agree_pairwise(
        a in arb_a_dataset(60),
        b in arb_b_dataset(100),
        seed in 0u64..u64::MAX,
        epochs in 1usize..12,
    ) {
        let bounds = random_epoch_bounds(b.len(), epochs, seed);
        let (seq_pairs, seq_counters, _) = stream(&a, &b, &bounds, 1);
        for threads in [2, 8] {
            let (pairs, counters, _) = stream(&a, &b, &bounds, threads);
            prop_assert_eq!(&pairs, &seq_pairs, "threads = {}", threads);
            prop_assert_eq!(counters, seq_counters, "threads = {}", threads);
        }
    }

    #[test]
    fn a_reused_tree_serves_every_stream_identically(
        a in arb_a_dataset(60),
        b in arb_b_dataset(100),
        seed in 0u64..u64::MAX,
    ) {
        // One engine serving three differently-batched streams of the same B must
        // give the one-shot answer every time.
        let (expected_pairs, expected) = collect_join(&TouchJoin::new(touch_cfg()), &a, &b);
        let mut engine = StreamingTouchJoin::build(&a, streaming_cfg(1));
        for (stream_no, epochs) in [1usize, 5, 13].into_iter().enumerate() {
            let bounds = random_epoch_bounds(b.len(), epochs, seed ^ stream_no as u64);
            let mut sink = CollectingSink::new();
            for window in bounds.windows(2) {
                let _ = engine.push_batch(&b.objects()[window[0]..window[1]], &mut sink);
            }
            prop_assert_eq!(
                &sink.sorted_pairs(), &expected_pairs,
                "stream {} (epochs = {}) diverged", stream_no, epochs
            );
            prop_assert_eq!(engine.cumulative_report().counters, expected.counters);
            engine.reset();
        }
        prop_assert_eq!(engine.streams(), 4);
    }
}

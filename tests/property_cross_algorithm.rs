//! Property-based integration tests: on randomly generated workloads (arbitrary box
//! positions, sizes, aspect ratios and ε), every algorithm in the workspace must
//! produce exactly the nested-loop result set, with no duplicates, and TOUCH's
//! counters must satisfy its structural invariants.

use proptest::prelude::*;
use touch::baselines::{IndexedNestedLoopJoin, PbsmJoin, PlaneSweepJoin, RTreeSyncJoin, S3Join};
use touch::{
    Aabb, CollectingSink, Dataset, JoinOrder, JoinQuery, LocalJoinStrategy, NestedLoopJoin, Point3,
    SpatialJoinAlgorithm, TouchConfig, TouchJoin,
};

/// An arbitrary box inside a ~100-unit space with sides up to 8 units (occasionally
/// degenerate), so that random workloads contain both isolated and heavily
/// overlapping objects.
fn arb_box() -> impl Strategy<Value = Aabb> {
    (0.0..100.0f64, 0.0..100.0f64, 0.0..100.0f64, 0.0..8.0f64, 0.0..8.0f64, 0.0..8.0f64).prop_map(
        |(x, y, z, w, h, d)| {
            let min = Point3::new(x, y, z);
            Aabb::new(min, min + Point3::new(w, h, d))
        },
    )
}

fn arb_dataset(max: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(arb_box(), 1..max).prop_map(Dataset::from_mbrs)
}

fn ground_truth(a: &Dataset, b: &Dataset, eps: f64) -> Vec<(u32, u32)> {
    run(&NestedLoopJoin::new(), a, b, eps)
}

fn run(algo: &dyn SpatialJoinAlgorithm, a: &Dataset, b: &Dataset, eps: f64) -> Vec<(u32, u32)> {
    let mut sink = CollectingSink::new();
    let _ = JoinQuery::new(a, b).within_distance(eps).engine(algo).run(&mut sink);
    sink.sorted_pairs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn touch_matches_the_nested_loop_on_arbitrary_workloads(
        a in arb_dataset(120),
        b in arb_dataset(160),
        eps in 0.0..10.0f64,
    ) {
        let expected = ground_truth(&a, &b, eps);
        let pairs = run(&TouchJoin::default(), &a, &b, eps);
        prop_assert_eq!(pairs, expected);
    }

    #[test]
    fn touch_configuration_variants_match_on_arbitrary_workloads(
        a in arb_dataset(80),
        b in arb_dataset(120),
        eps in 0.0..6.0f64,
        fanout in 2usize..10,
        partitions in 1usize..64,
    ) {
        let expected = ground_truth(&a, &b, eps);
        for strategy in [LocalJoinStrategy::Grid, LocalJoinStrategy::PlaneSweep] {
            for order in [JoinOrder::SmallerAsTree, JoinOrder::TreeOnB] {
                let config = TouchConfig {
                    partitions,
                    fanout,
                    local_join: strategy,
                    join_order: order,
                    ..TouchConfig::default()
                };
                let pairs = run(&TouchJoin::new(config), &a, &b, eps);
                prop_assert_eq!(
                    &pairs, &expected,
                    "config {:?}/{:?} fanout {} partitions {} diverged",
                    strategy, order, fanout, partitions
                );
            }
        }
    }

    #[test]
    fn every_baseline_matches_the_nested_loop_on_arbitrary_workloads(
        a in arb_dataset(90),
        b in arb_dataset(130),
        eps in 0.0..6.0f64,
    ) {
        let expected = ground_truth(&a, &b, eps);
        let algorithms: Vec<Box<dyn SpatialJoinAlgorithm>> = vec![
            Box::new(PlaneSweepJoin::new()),
            Box::new(PbsmJoin::new(12)),
            Box::new(S3Join::new(4, 3)),
            Box::new(IndexedNestedLoopJoin::new(8, 2)),
            Box::new(RTreeSyncJoin::new(8, 2)),
        ];
        for algo in &algorithms {
            let pairs = run(algo.as_ref(), &a, &b, eps);
            prop_assert_eq!(&pairs, &expected, "{} diverged", algo.name());
        }
    }

    #[test]
    fn touch_counter_invariants_hold(
        a in arb_dataset(100),
        b in arb_dataset(150),
        eps in 0.0..6.0f64,
    ) {
        let mut sink = CollectingSink::new();
        let report = JoinQuery::new(&a, &b).within_distance(eps).run(&mut sink);
        // Results reported == pairs delivered.
        prop_assert_eq!(report.result_pairs(), sink.pairs().len() as u64);
        // Filtered objects are a subset of the probe dataset (TOUCH builds its tree
        // on the smaller input and probes with the other, so the probe side may be
        // either A or B).
        prop_assert!(report.counters.filtered <= a.len().max(b.len()) as u64);
        // Every result came out of a comparison.
        prop_assert!(report.counters.comparisons >= report.result_pairs());
        // A filtered object can never appear in a result pair.
        if report.counters.filtered > 0 {
            prop_assert!(sink.pairs().len() < a.len() * b.len());
        }
        // Selectivity is a probability.
        prop_assert!(report.selectivity() >= 0.0 && report.selectivity() <= 1.0);
    }
}

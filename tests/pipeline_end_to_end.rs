//! End-to-end pipeline tests across the whole workspace: generators → indexes →
//! TOUCH phases → reports, exercised through the public facade API exactly the way a
//! downstream application would use it.

use touch::core::TouchTree;
use touch::index::{HierGridIndex, HierarchicalGrid, MultiAssignGrid, PackedRTree, UniformGrid};
use touch::metrics::MemoryUsage;
use touch::{
    count_join, CollectingSink, Counters, CountingSink, Dataset, JoinQuery, Phase,
    SpatialJoinAlgorithm, SyntheticDistribution, SyntheticSpec, TouchConfig, TouchJoin,
};

fn dataset(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 150.0, max_object_side: 2.0 },
    }
    .generate(seed)
}

#[test]
fn touch_phases_can_be_driven_manually_through_the_public_api() {
    // Applications that want to reuse the hierarchy across probes can drive the three
    // phases themselves instead of going through TouchJoin.
    let a = dataset(3_000, 1);
    let b = dataset(5_000, 2);

    // Phase 1: build.
    let mut tree = TouchTree::build(a.objects(), 256, 2);
    assert!(tree.height() > 1);
    assert_eq!(tree.a_len(), a.len());

    // Phase 2: assignment.
    let mut counters = Counters::new();
    tree.assign(b.objects(), &mut counters);
    assert_eq!(tree.assigned_b_count() + counters.filtered as usize, b.len());

    // Phase 3: join.
    let params = touch::LocalJoinParams {
        kind: touch::core::LocalJoinKind::Grid,
        cells_per_dim: 64,
        min_cell_size: 4.0,
        allpairs_max_a: 8,
        adapt: None,
    };
    let mut pairs = Vec::new();
    let mut scratch = touch::core::LocalJoinScratch::new();
    tree.join_assigned(&params, &mut scratch, &mut counters, &mut |x, y| {
        pairs.push((x, y));
        true
    });
    pairs.sort_unstable();

    // The one-shot API must produce the identical result.
    let algo = TouchJoin::new(TouchConfig { partitions: 256, ..TouchConfig::default() });
    let mut sink = CollectingSink::new();
    let _ = algo.join(&a, &b, &mut sink);
    assert_eq!(pairs, sink.sorted_pairs());

    // The tree is reusable after clearing the assignment.
    tree.clear_assignment();
    assert_eq!(tree.assigned_b_count(), 0);
}

#[test]
fn substrates_compose_on_the_same_dataset() {
    // All indexing substrates accept the same Dataset/SpatialObject vocabulary.
    let ds = dataset(2_000, 3);
    let extent = ds.extent().unwrap();

    let rtree = PackedRTree::paper_default(ds.objects());
    assert_eq!(rtree.len(), ds.len());
    assert!(rtree.memory_bytes() > 0);

    let grid = MultiAssignGrid::build(UniformGrid::new(extent, 32), ds.objects());
    assert!(grid.total_assignments() >= ds.len());

    let hier = HierGridIndex::build(HierarchicalGrid::paper_default(extent), ds.objects());
    assert_eq!(hier.len(), ds.len());

    // Point lookups through the R-tree agree with a scan.
    let probe = ds.get(42).mbr;
    let mut counters = Counters::new();
    let mut hits = rtree.query_ids(&probe, &mut counters);
    hits.sort_unstable();
    let mut expected: Vec<u32> =
        ds.iter().filter(|o| o.mbr.intersects(&probe)).map(|o| o.id).collect();
    expected.sort_unstable();
    assert_eq!(hits, expected);
}

#[test]
fn reports_carry_phase_timings_and_selectivity() {
    let a = dataset(4_000, 4);
    let b = dataset(8_000, 5);
    let report = count_join(&TouchJoin::default(), &a, &b);
    assert!(report.timer.get(Phase::Build) > std::time::Duration::ZERO);
    assert!(report.total_time() >= report.timer.get(Phase::Join));
    assert!(report.selectivity() > 0.0);
    assert!(report.memory_bytes > 0);
    // CSV rendering round-trips the headline numbers.
    let csv = report.to_csv_row();
    assert!(csv.starts_with("TOUCH,4000,8000,"));
}

#[test]
fn distance_join_reports_epsilon_and_scales_with_it() {
    let a = dataset(2_000, 6);
    let b = dataset(2_000, 7);
    let small = JoinQuery::new(&a, &b).within_distance(1.0).run(&mut CountingSink::new());
    let large = JoinQuery::new(&a, &b).within_distance(6.0).run(&mut CountingSink::new());
    assert_eq!(small.epsilon, 1.0);
    assert_eq!(large.epsilon, 6.0);
    assert!(large.result_pairs() > small.result_pairs());
}

#[test]
fn two_dimensional_data_works_through_the_whole_pipeline() {
    // Degenerate z axis: the GIS use case.
    let mut a = Dataset::new();
    let mut b = Dataset::new();
    for i in 0..50 {
        for j in 0..50 {
            let min = touch::Point3::new(i as f64 * 2.0, j as f64 * 2.0, 0.0);
            a.push_mbr(touch::Aabb::new(min, min + touch::Point3::new(1.0, 1.0, 0.0)));
            let min_b = touch::Point3::new(i as f64 * 2.0 + 0.5, j as f64 * 2.0 + 0.5, 0.0);
            b.push_mbr(touch::Aabb::new(min_b, min_b + touch::Point3::new(1.0, 1.0, 0.0)));
        }
    }
    let algorithms: Vec<Box<dyn SpatialJoinAlgorithm>> = vec![
        Box::new(TouchJoin::default()),
        Box::new(touch::PbsmJoin::new(40)),
        Box::new(touch::S3Join::paper_default()),
        Box::new(touch::RTreeSyncJoin::paper_default()),
        Box::new(touch::IndexedNestedLoopJoin::paper_default()),
        Box::new(touch::baselines::OctreeJoin::with_defaults()),
    ];
    for algo in algorithms {
        let report = count_join(algo.as_ref(), &a, &b);
        assert_eq!(
            report.result_pairs(),
            2_500,
            "{}: every A cell overlaps exactly its shifted twin",
            algo.name()
        );
    }
}

//! Cross-crate integration test: every join algorithm in the workspace produces the
//! exact same result set as the nested loop ground truth on every dataset family the
//! paper evaluates (uniform, Gaussian, clustered, neuroscience), for both plain
//! intersection joins and ε-distance joins.
//!
//! This is the executable form of the paper's Theorem 1 (completeness + soundness)
//! and Lemma 3 (no duplicates) applied to the whole algorithm suite.

use touch::baselines::{OctreeJoin, SeededTreeJoin};
use touch::{
    collect_join, CollectingSink, Dataset, IndexedNestedLoopJoin, JoinQuery, NestedLoopJoin,
    NeuroscienceSpec, ParallelTouchJoin, PbsmJoin, PlaneSweepJoin, RTreeSyncJoin, S3Join,
    SpatialJoinAlgorithm, SyntheticDistribution, SyntheticSpec, TouchJoin,
};

/// Every algorithm in the workspace, configured for the compact (~120-unit) spaces
/// the integration workloads use: the PBSM resolutions are chosen so the cell sizes
/// match the paper's 2-unit / 10-unit cells rather than the paper's absolute
/// 500/100 cells-per-dimension (which would allocate a 1.25e8-cell grid for a toy
/// workload).
fn full_suite() -> Vec<Box<dyn SpatialJoinAlgorithm>> {
    vec![
        Box::new(NestedLoopJoin::new()),
        Box::new(PlaneSweepJoin::new()),
        Box::new(PbsmJoin::with_label(60, "PBSM-fine")),
        Box::new(PbsmJoin::with_label(12, "PBSM-coarse")),
        Box::new(S3Join::paper_default()),
        Box::new(IndexedNestedLoopJoin::paper_default()),
        Box::new(RTreeSyncJoin::paper_default()),
        Box::new(OctreeJoin::with_defaults()),
        Box::new(SeededTreeJoin::paper_comparable()),
        Box::new(TouchJoin::default()),
        // The multi-threaded subsystem, at several thread counts: it must uphold
        // Theorem 1 / Lemma 3 exactly like its sequential counterpart.
        Box::new(ParallelTouchJoin::with_threads(1)),
        Box::new(ParallelTouchJoin::with_threads(2)),
        Box::new(ParallelTouchJoin::with_threads(8)),
    ]
}

/// Ground truth via the nested loop.
fn brute_force(a: &Dataset, b: &Dataset, eps: f64) -> Vec<(u32, u32)> {
    let mut sink = CollectingSink::new();
    let _ = JoinQuery::new(a, b).within_distance(eps).engine(NestedLoopJoin::new()).run(&mut sink);
    sink.sorted_pairs()
}

fn assert_all_algorithms_agree(a: &Dataset, b: &Dataset, eps: f64, context: &str) {
    let expected = brute_force(a, b, eps);
    for algo in full_suite() {
        let mut sink = CollectingSink::new();
        let report = JoinQuery::new(a, b).within_distance(eps).engine(algo.as_ref()).run(&mut sink);
        let pairs = sink.sorted_pairs();
        assert_eq!(
            pairs,
            expected,
            "{} disagrees with the nested loop on {context} (eps = {eps})",
            algo.name()
        );
        // No duplicates (Lemma 3) — sorted_pairs would keep duplicates adjacent.
        let mut dedup = pairs.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), pairs.len(), "{} emitted duplicates on {context}", algo.name());
        // The report's result counter matches what actually arrived in the sink.
        assert_eq!(report.result_pairs(), pairs.len() as u64);
        assert_eq!(report.dataset_a, a.len());
        assert_eq!(report.dataset_b, b.len());
    }
}

/// A small synthetic dataset in a compact space so the joins are selective but the
/// brute-force ground truth stays cheap.
fn synthetic(count: usize, dist: SyntheticDistribution, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: dist,
        space: touch::datagen::SpaceConfig { size: 120.0, max_object_side: 1.5 },
    }
    .generate(seed)
}

#[test]
fn all_algorithms_agree_on_uniform_data() {
    let a = synthetic(900, SyntheticDistribution::Uniform, 1);
    let b = synthetic(1_400, SyntheticDistribution::Uniform, 2);
    assert_all_algorithms_agree(&a, &b, 0.0, "uniform data");
    assert_all_algorithms_agree(&a, &b, 3.0, "uniform data");
}

#[test]
fn all_algorithms_agree_on_gaussian_data() {
    let dist = SyntheticDistribution::Gaussian { mean: 60.0, std_dev: 25.0 };
    let a = synthetic(800, dist, 3);
    let b = synthetic(1_200, dist, 4);
    assert_all_algorithms_agree(&a, &b, 2.0, "gaussian data");
}

#[test]
fn all_algorithms_agree_on_clustered_data() {
    let dist = SyntheticDistribution::Clustered { clusters: 12, std_dev: 8.0 };
    let a = synthetic(800, dist, 5);
    let b = synthetic(1_200, dist, 6);
    assert_all_algorithms_agree(&a, &b, 2.0, "clustered data");
}

#[test]
fn all_algorithms_agree_on_neuroscience_data() {
    let spec = NeuroscienceSpec {
        axon_cylinders: 700,
        dendrite_cylinders: 1_400,
        volume_side: 60.0,
        ..NeuroscienceSpec::default()
    };
    let tissue = spec.generate(7);
    assert_all_algorithms_agree(&tissue.axons, &tissue.dendrites, 2.0, "neuroscience data");
    assert_all_algorithms_agree(&tissue.axons, &tissue.dendrites, 5.0, "neuroscience data");
}

#[test]
fn all_algorithms_agree_on_skewed_object_sizes() {
    // Mix tiny and very large objects — stresses S3's level promotion, PBSM's
    // replication and TOUCH's assignment to high inner nodes.
    let mut a = synthetic(400, SyntheticDistribution::Uniform, 8);
    let mut b = synthetic(600, SyntheticDistribution::Uniform, 9);
    for i in 0..12 {
        let lo = i as f64 * 9.0;
        a.push_mbr(touch::Aabb::new(
            touch::Point3::new(lo, 0.0, 0.0),
            touch::Point3::new(lo + 35.0, 110.0, 110.0),
        ));
        b.push_mbr(touch::Aabb::new(
            touch::Point3::new(0.0, lo, 0.0),
            touch::Point3::new(110.0, lo + 35.0, 110.0),
        ));
    }
    assert_all_algorithms_agree(&a, &b, 0.0, "skewed object sizes");
}

#[test]
fn all_algorithms_handle_identical_datasets() {
    // A self-join-like workload (B is a copy of A): heavy overlap everywhere.
    let a = synthetic(700, SyntheticDistribution::Uniform, 10);
    let b = a.clone();
    assert_all_algorithms_agree(&a, &b, 1.0, "identical datasets");
}

#[test]
fn collect_join_and_distance_join_with_zero_eps_agree() {
    let a = synthetic(500, SyntheticDistribution::Uniform, 11);
    let b = synthetic(700, SyntheticDistribution::Uniform, 12);
    for algo in full_suite() {
        let (pairs, _) = collect_join(algo.as_ref(), &a, &b);
        let mut sink = CollectingSink::new();
        let _ = JoinQuery::new(&a, &b).within_distance(0.0).engine(algo.as_ref()).run(&mut sink);
        assert_eq!(pairs, sink.sorted_pairs(), "{}", algo.name());
    }
}

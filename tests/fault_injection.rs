//! Deterministic fault injection: a seeded [`FaultPlan`] panics at an exact
//! seam × worker × invocation of a run, and every engine contains the blast —
//! the `try_*` entry points return [`JoinError::WorkerPanicked`] with the
//! phase attributed, the process never aborts, and the faulted component
//! (stream, server, reader, tick engine) stays fully usable afterwards.
//!
//! Seam placement matters: a trigger is only *contained* if the trace hook it
//! fires from runs inside an engine's `catch_phase` region. The matrix below
//! arms exactly the contained seams of each engine — the sequential engine's
//! coordinator phase boundaries, every engine's worker-level chunk/node hooks,
//! and the serving layer's pre-commit generation build.

use std::collections::HashSet;
use std::sync::Once;
use std::time::Duration;
use touch::{
    BoundedSink, CollectingSink, Completion, Dataset, Engine, ExecControl, FaultPlan, JoinError,
    JoinQuery, JoinServer, ObjectId, OneShotStreaming, ParallelTouchJoin, Phase, Seam, ServeConfig,
    SpatialJoinAlgorithm, StreamingConfig, StreamingTouchJoin, SyntheticDistribution,
    SyntheticSpec, TickConfig, TickEngine, TouchConfig, TouchJoin, World,
};

const EPS: f64 = 1.5;

fn synthetic(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 60.0, max_object_side: 2.0 },
    }
    .generate(seed)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig { touch: TouchConfig::default(), delta_limit: None, hazard_slots: 8 }
}

/// A denser workload for the serve tests: their queries are plain intersection
/// joins (no ε extension), so the 60-unit space would yield almost no pairs.
fn dense(count: usize, seed: u64) -> Dataset {
    SyntheticSpec {
        count,
        distribution: SyntheticDistribution::Uniform,
        space: touch::datagen::SpaceConfig { size: 20.0, max_object_side: 2.0 },
    }
    .generate(seed)
}

static HOOK: Once = Once::new();

/// Installs (once per process) a panic hook that swallows the expected
/// `fault-injection:` panics — they are thrown on purpose and always caught —
/// so a green run of this suite does not spray backtraces, while every other
/// panic keeps the default reporting.
fn silence_fault_panics() {
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            // Only the injected panics *start* with the marker; a failing
            // assertion that quotes it mid-message must still be reported.
            if !message.starts_with("fault-injection:") {
                previous(info);
            }
        }));
    });
}

/// The phase a contained panic at this seam is attributed to.
fn expected_phase(seam: Seam) -> Phase {
    match seam {
        Seam::Build => Phase::Build,
        Seam::Assignment | Seam::AssignChunk => Phase::Assignment,
        _ => Phase::Join,
    }
}

/// The acceptance matrix: a seeded panic per contained seam × engine × 1/2/4/8
/// threads surfaces as `JoinError::WorkerPanicked` (correct phase, the
/// injected detail preserved) without aborting the process, and the engine
/// answers the next clean query bit-identically to a never-faulted baseline.
#[test]
fn seeded_fault_matrix_returns_errors_without_aborting() {
    silence_fault_panics();
    let a = synthetic(400, 51);
    let b = synthetic(500, 52);
    let mut baseline = CollectingSink::new();
    let _ =
        JoinQuery::new(&a, &b).within_distance(EPS).engine(TouchJoin::default()).run(&mut baseline);
    let baseline_pairs = baseline.sorted_pairs();
    assert!(!baseline_pairs.is_empty(), "degenerate workload");

    let mut cases = 0u64;
    for threads in [1usize, 2, 4, 8] {
        // Per engine, the seams whose hooks run inside its catch regions: the
        // sequential engine wraps all three coordinator phase boundaries; the
        // parallel engine wraps its build boundary and its worker loops; the
        // streaming engine wraps its (assignment, join) worker loops.
        let combos: Vec<(&str, Box<dyn SpatialJoinAlgorithm>, Vec<Seam>)> = vec![
            (
                "touch",
                Box::new(TouchJoin::default()),
                vec![Seam::Build, Seam::Assignment, Seam::Join, Seam::NodeJoin],
            ),
            (
                "parallel",
                Box::new(ParallelTouchJoin::with_threads(threads)),
                vec![Seam::Build, Seam::AssignChunk, Seam::NodeJoin],
            ),
            (
                "streaming",
                Box::new(OneShotStreaming::new(StreamingConfig {
                    threads,
                    ..StreamingConfig::default()
                })),
                vec![Seam::AssignChunk, Seam::NodeJoin],
            ),
        ];
        for (name, algo, seams) in combos {
            for seam in seams {
                cases += 1;
                let plan = FaultPlan::seeded(cases).panic_on(seam, None, 1, "matrix");
                let mut sink = CollectingSink::new();
                let err = JoinQuery::new(&a, &b)
                    .within_distance(EPS)
                    .engine(algo.as_ref())
                    .trace(&plan)
                    .try_run(&mut sink)
                    .expect_err("the injected panic must surface as an error");
                assert_eq!(plan.fired(), 1, "{name}({threads})/{seam:?}: trigger must fire");
                match err {
                    JoinError::WorkerPanicked { phase, detail, .. } => {
                        assert_eq!(
                            phase,
                            expected_phase(seam),
                            "{name}({threads})/{seam:?}: wrong phase attribution"
                        );
                        assert!(
                            detail.contains("fault-injection: matrix"),
                            "{name}({threads})/{seam:?}: detail lost: {detail}"
                        );
                    }
                    other => {
                        panic!("{name}({threads})/{seam:?}: expected WorkerPanicked, got {other}")
                    }
                }
                // The fault left no residue: a clean rerun agrees with the baseline.
                let mut retry = CollectingSink::new();
                let _ = JoinQuery::new(&a, &b)
                    .within_distance(EPS)
                    .engine(algo.as_ref())
                    .run(&mut retry);
                assert_eq!(
                    retry.sorted_pairs(),
                    baseline_pairs,
                    "{name}({threads})/{seam:?}: post-fault rerun diverged"
                );
            }
        }
    }
}

/// The auto engine contains faults in whatever engine its plan resolves to.
#[test]
fn auto_engine_contains_node_join_faults() {
    silence_fault_panics();
    let a = synthetic(400, 53);
    let b = synthetic(500, 54);
    let plan = FaultPlan::seeded(9).panic_on(Seam::NodeJoin, None, 1, "auto");
    let mut sink = CollectingSink::new();
    let err = JoinQuery::new(&a, &b)
        .within_distance(EPS)
        .engine(Engine::Auto)
        .trace(&plan)
        .try_run(&mut sink)
        .expect_err("the injected panic must surface through the auto engine");
    assert!(matches!(err, JoinError::WorkerPanicked { phase: Phase::Join, .. }), "{err}");
    assert_eq!(plan.fired(), 1);

    let mut retry = CollectingSink::new();
    let report = JoinQuery::new(&a, &b).within_distance(EPS).engine(Engine::Auto).run(&mut retry);
    assert!(report.result_pairs() > 0, "the auto engine recovers");
}

/// A trigger pinned to one logical worker fires on exactly that worker, and
/// the error attributes the panic to it — at every parallel width.
///
/// The per-node joins of a small workload are microseconds, so an unaided
/// pinned trigger would race thread spawn: worker 0 can drain every queue
/// before its siblings start. The same plan therefore stalls every *other*
/// worker's first node join; the work queues are seeded round-robin, so the
/// target worker always claims from its own non-empty queue long before any
/// stalled sibling could finish a node and steal it — the pinned trigger
/// fires deterministically.
#[test]
fn worker_restricted_triggers_attribute_the_panic() {
    silence_fault_panics();
    let a = synthetic(500, 55);
    let b = synthetic(600, 56);
    for threads in [2usize, 4, 8] {
        let target = threads - 1;
        let mut plan =
            FaultPlan::seeded(threads as u64).panic_on(Seam::NodeJoin, Some(target), 1, "pinned");
        for w in 0..threads {
            if w != target {
                plan = plan.delay_on(Seam::NodeJoin, Some(w), 1, Duration::from_millis(25));
            }
        }
        let mut sink = CollectingSink::new();
        let err = JoinQuery::new(&a, &b)
            .within_distance(EPS)
            .engine(ParallelTouchJoin::with_threads(threads))
            .trace(&plan)
            .try_run(&mut sink)
            .expect_err("the pinned panic must surface");
        // The panic trigger fired (the stall triggers may or may not have,
        // depending on how far the siblings got before the abort flag).
        assert!(plan.fired() >= 1, "threads = {threads}");
        match err {
            JoinError::WorkerPanicked { phase, worker, detail } => {
                assert_eq!(phase, Phase::Join, "threads = {threads}");
                assert_eq!(worker, target, "threads = {threads}: wrong worker attribution");
                assert!(detail.contains("fault-injection: pinned"), "{detail}");
            }
            other => panic!("threads = {threads}: expected WorkerPanicked, got {other}"),
        }
    }
}

/// A panicked epoch worker fails that epoch only: it is not counted, nothing
/// merges into the cumulative record, and the same batch pushed cleanly
/// afterwards reproduces a never-faulted stream — at 1 and 4 threads.
#[test]
fn streaming_fault_drops_the_epoch_and_keeps_the_stream_usable() {
    silence_fault_panics();
    let a = synthetic(400, 57);
    let b = synthetic(500, 58);
    for threads in [1usize, 4] {
        let config = StreamingConfig { threads, ..StreamingConfig::default() };
        let mut reference = StreamingTouchJoin::build_extended(&a, EPS, config);
        let mut ref_sink = CollectingSink::new();
        let _ = reference.push_batch(b.objects(), &mut ref_sink);

        let mut engine = StreamingTouchJoin::build_extended(&a, EPS, config);
        let plan =
            FaultPlan::seeded(threads as u64).panic_on(Seam::NodeJoin, None, 1, "epoch-fault");
        let mut sink = CollectingSink::new();
        let err = engine
            .try_push_batch(b.objects(), &mut sink, ExecControl::with_trace(&plan))
            .expect_err("the injected panic must surface");
        assert!(
            matches!(err, JoinError::WorkerPanicked { phase: Phase::Join, .. }),
            "threads = {threads}: {err}"
        );
        assert_eq!(engine.epochs(), 0, "threads = {threads}: a failed epoch is not counted");
        assert_eq!(engine.cumulative_report().counters.results, 0, "threads = {threads}");

        let mut retry = CollectingSink::new();
        let report = engine
            .try_push_batch(b.objects(), &mut retry, ExecControl::infallible())
            .expect("clean retry after the fault");
        assert_eq!(report.completion, Completion::Complete);
        assert_eq!(retry.sorted_pairs(), ref_sink.sorted_pairs(), "threads = {threads}");
        assert_eq!(
            engine.cumulative_report().counters,
            reference.cumulative_report().counters,
            "threads = {threads}: the recovered stream matches a never-faulted one"
        );
        assert_eq!(engine.epochs(), 1, "threads = {threads}");
    }
}

/// A panic inside the pre-commit generation build is contained before any
/// writer state moves: the version stays, the buffered delta survives, readers
/// keep serving the old generation bit-identically, and the retry commits.
#[test]
fn a_publish_panic_leaves_the_served_generation_intact() {
    silence_fault_panics();
    let a = dense(400, 59);
    let b = dense(400, 60);
    let server = JoinServer::new(&a, serve_cfg());
    let mut reader = server.reader();
    let mut before = CollectingSink::new();
    let before_report = reader.query(b.objects(), &mut before);
    let g0 = server.generation();

    let _ = server.insert(touch::Aabb::new(
        touch::Point3::new(1.0, 2.0, 3.0),
        touch::Point3::new(2.0, 3.0, 4.0),
    ));
    assert!(server.remove(0), "seed object 0 must be live");
    let delta = server.pending_delta();
    assert_eq!(delta, 2);

    let plan = FaultPlan::seeded(4).panic_on(Seam::Generation, None, 1, "publish");
    let err = server
        .try_publish(ExecControl::with_trace(&plan))
        .expect_err("the publish panic must be contained");
    assert!(matches!(err, JoinError::WorkerPanicked { .. }), "{err}");
    assert_eq!(plan.fired(), 1);
    assert_eq!(server.generation(), g0, "a failed publish must not move the version");
    assert_eq!(server.pending_delta(), delta, "the delta survives for retry");

    // Readers are unperturbed: same generation, same pairs.
    let mut after = CollectingSink::new();
    let after_report = reader.query(b.objects(), &mut after);
    assert_eq!(after_report.generation, before_report.generation);
    assert_eq!(after.sorted_pairs(), before.sorted_pairs());

    // The retry commits the buffered delta in full.
    let version = server.try_publish(ExecControl::infallible()).expect("retry publishes");
    assert_eq!(version, g0 + 1);
    assert_eq!(server.pending_delta(), 0);
    assert_eq!(server.snapshot().live(), a.len(), "one removal + one insert");
}

/// A panic anywhere inside a snapshot query — either coordinator phase
/// boundary or a node join — leaves the reader and the served generation fully
/// usable: the next clean query over the same reader agrees bit-identically.
#[test]
fn a_reader_query_panic_leaves_the_reader_usable() {
    silence_fault_panics();
    let a = dense(400, 61);
    let b = dense(400, 62);
    let server = JoinServer::new(&a, serve_cfg());
    let mut reader = server.reader();
    let mut clean = CollectingSink::new();
    let _ = reader.query(b.objects(), &mut clean);

    for (i, seam) in [Seam::Assignment, Seam::Join, Seam::NodeJoin].into_iter().enumerate() {
        let plan = FaultPlan::seeded(i as u64).panic_on(seam, None, 1, "query");
        let mut sink = CollectingSink::new();
        let err = reader
            .try_query(b.objects(), &mut sink, ExecControl::with_trace(&plan))
            .expect_err("the injected query panic must surface");
        match err {
            JoinError::WorkerPanicked { phase, .. } => {
                assert_eq!(phase, expected_phase(seam), "{seam:?}");
            }
            other => panic!("{seam:?}: expected WorkerPanicked, got {other}"),
        }
        assert_eq!(plan.fired(), 1, "{seam:?}");

        let mut retry = CollectingSink::new();
        let _ = reader
            .try_query(b.objects(), &mut retry, ExecControl::infallible())
            .expect("clean retry after the fault");
        assert_eq!(retry.sorted_pairs(), clean.sorted_pairs(), "{seam:?}");
    }
}

/// A tick fault abandons the tick — no record, no counters, pairs cleared,
/// tick counter unmoved — and the engine keeps ticking afterwards.
#[test]
fn a_tick_fault_abandons_the_tick_and_the_engine_recovers() {
    silence_fault_panics();
    let config = TickConfig::default().with_epsilon(30.0);
    let mut engine = TickEngine::new(World::random(300, 63), config);
    let first = engine.tick();
    assert!(first.pairs > 0, "degenerate world: no collisions in tick 1");

    let plan = FaultPlan::seeded(6).panic_on(Seam::NodeJoin, None, 1, "tick");
    let err = engine
        .try_tick(ExecControl::with_trace(&plan))
        .expect_err("the tick panic must be contained");
    assert!(matches!(err, JoinError::WorkerPanicked { phase: Phase::Join, .. }), "{err}");
    assert_eq!(plan.fired(), 1);
    assert!(engine.pairs().is_empty(), "the abandoned tick's pairs are cleared");
    assert_eq!(
        engine.counters().results,
        first.pairs,
        "the failed tick added nothing to the running counters"
    );

    let record = engine.try_tick(ExecControl::infallible()).expect("the engine keeps ticking");
    assert_eq!(record.tick, 2, "the abandoned tick never advanced the counter");
}

/// Injected delays model stalled workers, not failures: with no token armed
/// they perturb nothing but wall clock — pairs and counters bit-identical.
#[test]
fn delays_perturb_nothing_but_time() {
    let a = synthetic(400, 64);
    let b = synthetic(500, 65);
    let mut reference = StreamingTouchJoin::build_extended(&a, EPS, StreamingConfig::default());
    let mut ref_sink = CollectingSink::new();
    let _ = reference.push_batch(b.objects(), &mut ref_sink);

    let plan = FaultPlan::seeded(7)
        .delay_on(Seam::AssignChunk, None, 1, Duration::from_millis(2))
        .delay_on(Seam::NodeJoin, None, 2, Duration::from_millis(2))
        .delay_on(Seam::Epoch, None, 1, Duration::from_millis(2));
    let mut engine = StreamingTouchJoin::build_extended(&a, EPS, StreamingConfig::default());
    let mut sink = CollectingSink::new();
    let report = engine
        .try_push_batch(b.objects(), &mut sink, ExecControl::with_trace(&plan))
        .expect("delays are not failures");
    assert_eq!(report.completion, Completion::Complete);
    assert_eq!(plan.fired(), 3, "all three stalls must have fired");
    assert_eq!(sink.sorted_pairs(), ref_sink.sorted_pairs());
    assert_eq!(engine.cumulative_report().counters, reference.cumulative_report().counters);
}

/// A truncating bounded sink that would overflow is a hard
/// `ResourceExhausted` — never a silently clipped success — while a flushing
/// sink of the same capacity spills and completes.
#[test]
fn bounded_queries_exhaust_instead_of_silently_truncating() {
    let a = dense(500, 66);
    let b = dense(500, 67);
    let server = JoinServer::new(&a, serve_cfg());
    let mut reader = server.reader();
    let mut clean = CollectingSink::new();
    let clean_report = reader.query(b.objects(), &mut clean);
    let total = clean_report.result_pairs();
    assert!(total > 4, "workload too sparse to overflow a capacity of 3");

    let mut truncating = BoundedSink::truncating(3);
    let err = reader
        .try_query_bounded(b.objects(), &mut truncating, ExecControl::infallible())
        .expect_err("a clipped result set is a budget failure");
    match err {
        JoinError::ResourceExhausted { detail } => {
            assert!(detail.contains('3'), "the budget size is named: {detail}");
        }
        other => panic!("expected ResourceExhausted, got {other}"),
    }

    let mut roomy = BoundedSink::truncating(total as usize + 8);
    let report = reader
        .try_query_bounded(b.objects(), &mut roomy, ExecControl::infallible())
        .expect("a roomy budget is a plain success");
    assert_eq!(report.result_pairs(), total);

    let mut spilled: Vec<(ObjectId, ObjectId)> = Vec::new();
    let mut flushing = BoundedSink::flushing(3, |chunk| spilled.extend_from_slice(chunk));
    let report = reader
        .try_query_bounded(b.objects(), &mut flushing, ExecControl::infallible())
        .expect("flushing sinks spill instead of exhausting");
    assert_eq!(report.result_pairs(), total);
    assert_eq!(flushing.total(), total);
    let buffered = flushing.buffered().len() as u64;
    drop(flushing);
    let mut all: Vec<(ObjectId, ObjectId)> = spilled;
    assert_eq!(all.len() as u64 + buffered, total, "spill + buffer covers every pair");
    all.sort_unstable();
    let clean_set: HashSet<(ObjectId, ObjectId)> = clean.pairs().iter().copied().collect();
    assert!(all.iter().all(|p| clean_set.contains(p)));
}

//! Equivalence of the `touch-serve` snapshot layer: a query against a published
//! generation must reproduce the one-shot `TouchJoin` over the generation's
//! **logical live contents** (survivors in arrival order, then inserts in
//! arrival order) — bit-identical pairs *and counters* for fully rebuilt
//! generations, at every reader-thread count; identical pair sets (and
//! deterministic counters) for incrementally folded ones.
//!
//! The one-shot reference is driven through the real `TouchJoin` on a dense
//! re-identification of the live objects (the `Dataset` invariant requires ids
//! `0..n`): ids are payload, never inputs, to every phase — the STR sort keys
//! on centres, the kernels on geometry — so the remap changes nothing but the
//! labels, which the test maps back before comparing.

use std::sync::mpsc::channel;
use std::sync::Arc;
use touch::{
    collect_join, Aabb, BoundedSink, CollectingSink, Counters, Dataset, ExecTrace, JoinOrder,
    JoinServer, Point3, ReaderPool, RunReport, ServeConfig, SpatialObject, TouchConfig, TouchJoin,
    TraceEvent, TraceSink,
};

fn touch_cfg() -> TouchConfig {
    TouchConfig { partitions: 16, join_order: JoinOrder::TreeOnA, ..TouchConfig::default() }
}

fn serve_cfg(delta_limit: Option<usize>) -> ServeConfig {
    ServeConfig { touch: touch_cfg(), delta_limit, hazard_slots: 8 }
}

fn lattice(side: usize, spacing: f64, box_side: f64, offset: f64) -> Dataset {
    let mut ds = Dataset::new();
    for x in 0..side {
        for y in 0..side {
            for z in 0..side {
                let min = Point3::new(
                    x as f64 * spacing + offset,
                    y as f64 * spacing + offset,
                    z as f64 * spacing + offset,
                );
                ds.push_mbr(Aabb::new(min, min + Point3::splat(box_side)));
            }
        }
    }
    ds
}

fn cube(at: Point3, side: f64) -> Aabb {
    Aabb::new(at, at + Point3::splat(side))
}

/// The one-shot reference over arbitrary (non-dense-id) live contents: join a
/// densely re-identified copy through the real `TouchJoin`, then translate the
/// pair labels back. Counters are id-independent, so they transfer verbatim.
fn reference_join(live: &[SpatialObject], b: &Dataset) -> (Vec<(u32, u32)>, RunReport) {
    let dense: Vec<SpatialObject> =
        live.iter().enumerate().map(|(i, o)| SpatialObject::new(i as u32, o.mbr)).collect();
    let back: Vec<u32> = live.iter().map(|o| o.id).collect();
    let (pairs, report) =
        collect_join(&TouchJoin::new(touch_cfg()), &Dataset::from_objects(dense), b);
    let mut mapped: Vec<(u32, u32)> =
        pairs.into_iter().map(|(a, b)| (back[a as usize], b)).collect();
    mapped.sort_unstable();
    (mapped, report)
}

/// Replays `server`'s canonical live-order semantics on the test's side.
struct Shadow {
    live: Vec<SpatialObject>,
}

impl Shadow {
    fn remove(&mut self, id: u32) {
        self.live.retain(|o| o.id != id);
    }
    fn insert(&mut self, id: u32, mbr: Aabb) {
        self.live.push(SpatialObject::new(id, mbr));
    }
}

/// The headline contract: after every publish of a **fully rebuilt**
/// generation (`delta_limit = Some(0)`), concurrent snapshot queries at 1, 2,
/// 4 and 8 reader threads are bit-identical — pairs AND counters — to the
/// one-shot reference over the logical live contents.
#[test]
fn snapshot_queries_match_the_one_shot_reference_at_every_thread_count() {
    let a = lattice(5, 1.5, 1.0, 0.0);
    let b = lattice(6, 1.3, 0.8, 0.4);
    let batch: Arc<Vec<SpatialObject>> = Arc::new(b.objects().to_vec());

    let server = Arc::new(JoinServer::new(&a, serve_cfg(Some(0))));
    let mut shadow = Shadow { live: a.objects().to_vec() };

    // Round 0 queries the seed generation; each later round mutates + publishes.
    for round in 0..4 {
        if round > 0 {
            // A mixed delta: retire a few survivors, add a few newcomers.
            for k in 0..3u32 {
                let victim = shadow.live[(round * 7 + k as usize * 11) % shadow.live.len()].id;
                assert!(server.remove(victim), "round {round}: {victim} should be live");
                shadow.remove(victim);
            }
            for k in 0..4 {
                let at = Point3::new(
                    (round as f64) * 1.1 + (k as f64) * 0.9,
                    (k as f64) * 1.3,
                    (round as f64) * 0.7,
                );
                let id = server.insert(cube(at, 1.0));
                shadow.insert(id, cube(at, 1.0));
            }
            assert_eq!(server.pending_delta(), 7);
            let version = server.publish();
            assert_eq!(version, round as u64);
            assert_eq!(server.snapshot().live(), shadow.live.len());
        }

        let (expected_pairs, expected) = reference_join(&shadow.live, &b);
        for threads in [1usize, 2, 4, 8] {
            let pool = ReaderPool::new(threads);
            let (tx, rx) = channel::<(Vec<(u32, u32)>, Counters, Option<u64>)>();
            let queries = threads * 2;
            let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..queries)
                .map(|_| {
                    let mut reader = server.reader();
                    let batch = Arc::clone(&batch);
                    let tx = tx.clone();
                    Box::new(move || {
                        let mut sink = CollectingSink::new();
                        let report = reader.query(&batch, &mut sink);
                        tx.send((sink.sorted_pairs(), report.counters, report.generation)).unwrap();
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.run_all(jobs);
            for _ in 0..queries {
                let (pairs, counters, generation) = rx.recv().unwrap();
                assert_eq!(pairs, expected_pairs, "round {round}, {threads} reader threads");
                assert_eq!(
                    counters, expected.counters,
                    "round {round}, {threads} reader threads: counters must be bit-identical"
                );
                assert_eq!(generation, Some(round as u64));
            }
        }
    }
}

/// Incremental folds (`delta_limit = Some(usize::MAX)`) reuse the previous
/// generation's tiling: the pair set must still be exact, the run must be
/// deterministic (two identically driven servers report identical counters),
/// and the mutation semantics (cancel pending inserts, reject unknown ids)
/// must hold.
#[test]
fn incremental_folds_preserve_the_result_set() {
    let a = lattice(4, 1.6, 1.1, 0.0);
    let b = lattice(5, 1.4, 0.9, 0.3);
    let drive = |server: &JoinServer| -> Vec<(Vec<(u32, u32)>, Counters)> {
        let mut out = Vec::new();
        let mut reader = server.reader();
        for round in 0..3u32 {
            let keep = server.insert(cube(Point3::new(round as f64, 0.3, 0.9), 1.2));
            let cancelled = server.insert(cube(Point3::new(9.9, 9.9, 9.9), 0.5));
            assert!(server.remove(cancelled), "a pending insert is cancellable");
            assert!(!server.remove(cancelled), "...exactly once");
            assert!(server.remove(round * 2), "seed ids stay removable");
            assert!(!server.remove(keep + 10_000), "unknown ids are rejected");
            server.publish();
            let mut sink = CollectingSink::new();
            let report = reader.query(b.objects(), &mut sink);
            out.push((sink.sorted_pairs(), report.counters));
        }
        out
    };

    let first = drive(&JoinServer::new(&a, serve_cfg(Some(usize::MAX))));
    let second = drive(&JoinServer::new(&a, serve_cfg(Some(usize::MAX))));
    assert_eq!(first, second, "folded generations must be deterministic");

    // And the pair sets match the logical reference at every round.
    let mut shadow = Shadow { live: a.objects().to_vec() };
    let mut next_id = a.len() as u32;
    for (round, (pairs, _)) in first.iter().enumerate() {
        let keep = next_id;
        next_id += 2; // one kept insert + one cancelled insert per round
        shadow.insert(keep, cube(Point3::new(round as f64, 0.3, 0.9), 1.2));
        shadow.remove(round as u32 * 2);
        let (expected_pairs, _) = reference_join(&shadow.live, &b);
        assert_eq!(pairs, &expected_pairs, "round {round}: fold changed the result set");
    }
}

/// The planner-decided default: small deltas fold (the generation keeps the
/// old tiling), big deltas rebuild. Observable through `Generation::delta` and
/// the generation's tiled order.
#[test]
fn the_delta_threshold_picks_fold_or_rebuild() {
    let a = lattice(5, 1.5, 1.0, 0.0); // 125 objects
    let server = JoinServer::new(&a, serve_cfg(None));
    let seed_order: Vec<u32> = server.snapshot().tree().a_objects().iter().map(|o| o.id).collect();

    // One insert: far below any sensible threshold — the fold appends.
    let id = server.insert(cube(Point3::new(50.0, 50.0, 50.0), 1.0));
    server.publish();
    let folded = server.snapshot();
    assert_eq!(folded.delta(), 1);
    let folded_order: Vec<u32> = folded.tree().a_objects().iter().map(|o| o.id).collect();
    assert_eq!(folded_order[..seed_order.len()], seed_order[..], "a fold keeps the old tiling");
    assert_eq!(*folded_order.last().unwrap(), id, "...and appends the insert");

    // A delta bigger than the whole dataset: must re-tile (the far-away block
    // ends up spatially sorted, not appended).
    for i in 0..200u32 {
        let _ = server.insert(cube(Point3::new(-20.0 - (i as f64 % 10.0), 0.0, 0.0), 1.0));
    }
    server.publish();
    let rebuilt = server.snapshot();
    assert_eq!(rebuilt.delta(), 200);
    assert_eq!(rebuilt.live(), a.len() + 201);
    let rebuilt_order: Vec<u32> = rebuilt.tree().a_objects().iter().map(|o| o.id).collect();
    assert_ne!(
        rebuilt_order[..seed_order.len()],
        seed_order[..],
        "a rebuild re-tiles from scratch"
    );
}

/// Mutations are invisible until published, publishes with nothing pending are
/// free, and every report carries the generation it actually ran against.
#[test]
fn mutations_are_invisible_until_publish() {
    let a = lattice(4, 2.0, 1.0, 0.0);
    let b = lattice(4, 2.0, 1.0, 0.5);
    let server = JoinServer::new(&a, serve_cfg(Some(0)));
    let mut reader = server.reader();

    let mut sink = CollectingSink::new();
    let before = reader.query(b.objects(), &mut sink);
    let baseline_pairs = sink.sorted_pairs();
    assert_eq!(before.generation, Some(0));
    assert_eq!(server.publish(), 0, "publishing an empty delta is a no-op");

    // A box overlapping everything in b's first cell, buffered but unpublished.
    let id = server.insert(cube(Point3::new(0.4, 0.4, 0.4), 1.0));
    let mut sink = CollectingSink::new();
    let during = reader.query(b.objects(), &mut sink);
    assert_eq!(sink.sorted_pairs(), baseline_pairs, "unpublished inserts must stay invisible");
    assert_eq!(during.generation, Some(0));

    assert_eq!(server.publish(), 1);
    let mut sink = CollectingSink::new();
    let after = reader.query(b.objects(), &mut sink);
    assert_eq!(after.generation, Some(1));
    assert!(sink.sorted_pairs().len() > baseline_pairs.len());
    assert!(sink.sorted_pairs().iter().any(|&(a_id, _)| a_id == id));

    // Remove it again: back to the baseline, two generations later.
    assert!(server.remove(id));
    assert_eq!(server.publish(), 2);
    let mut sink = CollectingSink::new();
    let restored = reader.query(b.objects(), &mut sink);
    assert_eq!(sink.sorted_pairs(), baseline_pairs);
    assert_eq!(restored.generation, Some(2));
    assert_eq!(restored.counters, before.counters, "a full rebuild restores the exact run");
}

/// Tracing is observational (bit-identical pairs and counters), and publishes
/// record `Generation` spans with the folded delta.
#[test]
fn traced_serving_changes_nothing_and_records_generations() {
    let a = lattice(4, 1.6, 1.0, 0.0);
    let b = lattice(5, 1.3, 0.8, 0.3);
    let trace = ExecTrace::new();
    let server = JoinServer::new(&a, serve_cfg(Some(0)));
    let mut reader = server.reader();

    let _ = server.insert(cube(Point3::new(1.0, 1.0, 1.0), 1.0));
    assert!(server.remove(0));
    server.publish_traced(&trace);

    let mut traced_sink = CollectingSink::new();
    let traced = reader.query_traced(b.objects(), &mut traced_sink, &trace);
    let mut plain_sink = CollectingSink::new();
    let plain = reader.query(b.objects(), &mut plain_sink);
    assert_eq!(traced_sink.sorted_pairs(), plain_sink.sorted_pairs());
    assert_eq!(traced.counters, plain.counters);

    let generations: Vec<_> = trace
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Generation { generation, live, delta, .. } => {
                Some((generation, live, delta))
            }
            _ => None,
        })
        .collect();
    assert_eq!(generations, vec![(1, a.len(), 2)]);
    assert_eq!(trace.summary().expect("recording sink").generations, 1);
}

/// Bounded sinks on the serving path: flushing loses nothing under a fixed
/// memory bound; truncating stops the engine early through the standard
/// protocol.
#[test]
fn bounded_sinks_bound_memory_on_the_query_path() {
    let a = lattice(5, 1.5, 1.0, 0.0);
    let b = lattice(5, 1.5, 1.0, 0.2);
    let server = JoinServer::new(&a, serve_cfg(Some(0)));
    let mut reader = server.reader();

    let mut collected = CollectingSink::new();
    let full = reader.query(b.objects(), &mut collected);

    let mut spilled: Vec<(u32, u32)> = Vec::new();
    let spilled_report = {
        let mut bounded = BoundedSink::flushing(16, |chunk| spilled.extend_from_slice(chunk));
        let report = reader.query(b.objects(), &mut bounded);
        assert_eq!(bounded.total(), full.result_pairs());
        assert!(bounded.buffered().is_empty(), "query finish flushes the tail");
        report
    };
    spilled.sort_unstable();
    assert_eq!(spilled, collected.sorted_pairs(), "a flushing bound loses nothing");
    assert_eq!(spilled_report.counters, full.counters);

    let mut truncated = BoundedSink::truncating(8);
    let report = reader.query(b.objects(), &mut truncated);
    assert_eq!(truncated.total(), 8);
    assert_eq!(report.result_pairs(), 8);
    assert!(
        report.counters.comparisons < full.counters.comparisons,
        "truncation must stop the join early, not just drop pairs"
    );
}
